"""Sharded streaming workers: ordering, bit-identity, restart-without-loss.

The contracts mirror the batch server's, adapted to state:

* sharding changes *nothing*: a served feed yields per-stream readouts
  bit-identical to one session consuming the feed alone;
* a crashed worker costs a retry, never per-stream membrane state —
  sessions are server-owned and ``process`` is transactional.
"""

import threading

import numpy as np
import pytest

from repro.data.telemetry import make_telemetry_stream
from repro.serve import StreamServer
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.stream import StreamSession

CHANNELS = 6


def make_session(seed=0, window=4, encoder="rate"):
    model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=window,
                       rng=np.random.default_rng(seed))
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: 0.5 for name in manager.states})
    manager.set_execution("csr")
    manager.freeze()
    return StreamSession(model, window=window, encoder=encoder, manager=manager)


def make_feed(streams=3, events=8, seed=0):
    return list(make_telemetry_stream(
        num_streams=streams, num_channels=CHANNELS, num_events=events, seed=seed,
    ))


def by_stream(results):
    grouped = {}
    for result in results:
        grouped.setdefault(result.stream_id, []).append(result.logits)
    return grouped


class _FlakyStreamFactory:
    """Sessions whose first ``crashes`` events raise mid-process."""

    def __init__(self, crashes=1, **session_kwargs):
        self.remaining = crashes
        self.session_kwargs = session_kwargs
        self.lock = threading.Lock()

    def __call__(self):
        real = make_session(**self.session_kwargs)
        outer = self

        class Flaky(StreamSession):
            def __init__(self):
                # Reuse the already-built session's innards wholesale.
                self.__dict__.update(real.__dict__)

            def _step(self, net_state, frame):
                # Crash *after* the clone mutated (encoder state moved,
                # frame encoded) — exactly the mid-event worker death the
                # transactional contract is about.
                with outer.lock:
                    if outer.remaining > 0:
                        outer.remaining -= 1
                        raise RuntimeError("injected stream worker crash")
                return super()._step(net_state, frame)

        return Flaky()


@pytest.fixture(autouse=True)
def quiet_thread_excepthook(monkeypatch):
    # Worker deaths re-raise on purpose (the supervisor watches the
    # thread); keep the expected tracebacks out of the test output.
    monkeypatch.setattr(threading, "excepthook", lambda args: None)


class TestServedBitIdentity:
    @pytest.mark.parametrize("workers", (1, 3))
    def test_served_feed_matches_solo_session(self, workers):
        feed = make_feed()
        reference = make_session()
        solo = by_stream(
            [r for e in feed if (r := reference.process(e)) is not None]
        )
        with StreamServer(make_session, workers=workers) as server:
            served = by_stream(server.process_stream(feed, timeout=30.0))
            stats = server.stats()
        assert set(served) == set(solo)
        for stream_id, logits in served.items():
            assert len(logits) == len(solo[stream_id])
            for want, got in zip(solo[stream_id], logits):
                assert np.array_equal(want, got)
        assert stats["completed"] == len(feed)
        assert stats["windows"] == sum(len(v) for v in solo.values())
        assert stats["failed"] == 0

    def test_sharding_is_stable_and_in_range(self):
        server = StreamServer(make_session, workers=3)
        for stream_id in ("device-00", "device-01", "a", "b", "c"):
            shard = server.shard_of(stream_id)
            assert 0 <= shard < 3
            assert shard == server.shard_of(stream_id)

    def test_flush_drains_partial_windows(self):
        feed = make_feed(streams=2, events=6)  # 6 = one window + 2 buffered
        with StreamServer(make_session, workers=2) as server:
            server.process_stream(feed, timeout=30.0)
            flushed = server.flush()
        assert {r.stream_id for r in flushed} == {"device-00", "device-01"}
        assert all(r.partial for r in flushed)

    def test_per_stream_stats_are_merged_across_shards(self):
        feed = make_feed(streams=3, events=5)
        with StreamServer(make_session, workers=2) as server:
            server.process_stream(feed, timeout=30.0)
            streams = server.stats()["streams"]
        assert set(streams) == {"device-00", "device-01", "device-02"}
        assert all(per["events"] == 5 for per in streams.values())


class TestRestartWithoutLoss:
    def test_crashed_worker_retries_and_state_survives(self):
        feed = make_feed(streams=2, events=12)
        reference = make_session()
        solo = by_stream(
            [r for e in feed if (r := reference.process(e)) is not None]
        )
        with StreamServer(
            _FlakyStreamFactory(crashes=2), workers=1,
            supervise_interval_s=0.002,
        ) as server:
            served = by_stream(server.process_stream(feed, timeout=30.0))
            stats = server.stats()
        # Bit-identical despite two mid-event worker deaths: committed
        # per-stream state (membranes + encoder RNG) survived intact.
        assert set(served) == set(solo)
        for stream_id, logits in served.items():
            for want, got in zip(solo[stream_id], logits):
                assert np.array_equal(want, got)
        assert stats["restarts"] >= 2
        assert stats["failed"] == 0
        assert stats["completed"] == len(feed)

    def test_exhausted_retry_budget_fails_the_future(self):
        with StreamServer(
            _FlakyStreamFactory(crashes=100), workers=1,
            max_attempts=2, max_restarts=100, supervise_interval_s=0.002,
        ) as server:
            future = server.submit(make_feed(streams=1, events=1)[0])
            with pytest.raises(RuntimeError, match="injected stream worker"):
                future.result(timeout=30.0)
            assert server.stats()["failed"] >= 1

    def test_restart_budget_exhaustion_fails_queued_events(self):
        def doomed_factory():
            raise RuntimeError("factory can never build a session")

        server = StreamServer(
            doomed_factory, workers=1, max_restarts=2,
            supervise_interval_s=0.002,
        )
        with pytest.raises(RuntimeError, match="factory can never"):
            server.start()

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            StreamServer(make_session, workers=0)
        with pytest.raises(ValueError, match="max_attempts"):
            StreamServer(make_session, max_attempts=0)

    def test_stop_is_idempotent_and_restartable(self):
        server = StreamServer(make_session, workers=1)
        server.start()
        server.start()  # no-op while running
        server.stop()
        server.stop()  # no-op once stopped
