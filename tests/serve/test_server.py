"""Serving stack: micro-batcher policy, registry, and the supervised
worker pool.

The two contracts the tentpole rests on:

* concurrency changes *nothing*: N clients hammering the batched
  server get bit-identical results to sequential single-request
  inference, at every batch size (sessions pad every forward to one
  canonical GEMM shape precisely so this holds);
* a crashed worker costs a retry, not an answer: its in-flight
  requests go back to the queue front, a fresh worker replaces it, and
  only requests whose retry budget is exhausted fail.
"""

import threading
import time

import numpy as np
import pytest

from repro.serve import InferenceServer, InferenceSession, MicroBatcher, ModelRegistry
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager


def make_session(max_batch=4, seed=0, execution="csr"):
    model = SpikingMLP(in_features=10, num_classes=5, hidden=(12,),
                       timesteps=2, rng=np.random.default_rng(seed))
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_distribution("uniform", 0.3)
    manager.set_execution(execution)
    return InferenceSession(model, manager, max_batch=max_batch)


def make_samples(count, seed=5):
    return np.random.default_rng(seed).standard_normal(
        (count, 10)
    ).astype(np.float32)


@pytest.mark.smoke
class TestMicroBatcher:
    def test_full_batch_flushes_immediately(self):
        batcher = MicroBatcher(max_batch=3, max_latency_s=60.0)
        futures = [batcher.submit(i) for i in range(3)]
        batch = batcher.next_batch()
        assert [r.payload for r in batch] == [0, 1, 2]
        assert all(r.attempts == 1 for r in batch)
        assert futures[0] is batch[0].future

    def test_short_batch_flushes_after_max_latency(self):
        batcher = MicroBatcher(max_batch=8, max_latency_s=0.01)
        batcher.submit("only")
        start = time.monotonic()
        batch = batcher.next_batch()
        assert [r.payload for r in batch] == ["only"]
        # Flushed by the latency deadline, not a full batch.
        assert time.monotonic() - start < 1.0

    def test_requeue_goes_to_the_front_in_order(self):
        batcher = MicroBatcher(max_batch=4, max_latency_s=0.0)
        batcher.submit("a")
        batcher.submit("b")
        inflight = batcher.next_batch()
        batcher.submit("c")
        batcher.requeue(inflight)
        # Retried work leads, in its original order, ahead of arrivals.
        assert [r.payload for r in batcher.next_batch()] == ["a", "b", "c"]

    def test_attempts_bump_once_per_dispatch(self):
        batcher = MicroBatcher(max_batch=2, max_latency_s=0.0)
        batcher.submit("x")
        (request,) = batcher.next_batch()
        assert request.attempts == 1
        batcher.requeue([request])
        (again,) = batcher.next_batch()
        assert again is request
        assert again.attempts == 2

    def test_close_drains_then_returns_none(self):
        batcher = MicroBatcher(max_batch=8, max_latency_s=60.0)
        batcher.submit("queued")
        batcher.close()
        assert [r.payload for r in batcher.next_batch()] == ["queued"]
        assert batcher.next_batch() is None
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("late")


@pytest.mark.smoke
class TestRegistry:
    def test_sessions_are_fresh_per_call(self):
        # A factory returning a shared pair would hand two workers the
        # same membrane state; the registry must call it per session.
        calls = []

        def factory():
            session = make_session()
            calls.append(1)
            return session.model, session.manager

        registry = ModelRegistry().register("counted", factory)
        first = registry.session("counted")
        second = registry.session("counted")
        assert len(calls) == 2
        assert first.model is not second.model
        assert "counted" in registry
        assert registry.names() == ["counted"]

    def test_unknown_name_lists_registered(self):
        registry = ModelRegistry()
        with pytest.raises(KeyError, match="no model 'ghost'"):
            registry.session("ghost")

    def test_load_checkpoint_round_trip(self, tmp_path):
        from repro.experiments import scaled_config
        from repro.experiments.runner import build_experiment_model
        from repro.optim import SGD
        from repro.sparse import SETSNN
        from repro.train.checkpoint import save_checkpoint

        config = scaled_config("cifar10", "convnet", "set", 0.7,
                               epochs=1, train_samples=16, timesteps=2)
        model = build_experiment_model(config)
        method = SETSNN(sparsity=0.7, total_iterations=8, update_frequency=4,
                        rng=np.random.default_rng(3))
        method.bind(model, SGD(model.parameters(), lr=0.1))
        save_checkpoint(tmp_path / "ckpt", model, method)

        registry = ModelRegistry().load_checkpoint(
            "restored", config, tmp_path / "ckpt", max_batch=4
        )
        session = registry.session("restored")
        assert session.manager.frozen
        # Masks survived the round-trip: the restored manager reports
        # the trained sparsity, not a dense model.
        assert abs(session.manager.sparsity() - method.sparsity()) < 1e-6
        sample = np.random.default_rng(6).standard_normal(
            (2, 3, config.image_size, config.image_size)
        ).astype(np.float32)
        out = session.predict(sample)
        assert out.shape == (2, config.num_classes)

    def test_session_is_frozen_and_batch_sized(self):
        session = make_session(max_batch=6)
        assert session.manager.frozen
        assert session.max_batch == 6
        routes = {entry["route"] for entry in session.dispatch_report()}
        assert routes <= {"csr", "dense"}
        report = session.storage_report()
        assert report["frozen"] is True


class TestBitIdenticalConcurrency:
    @pytest.mark.parametrize("max_batch", (1, 3, 8))
    def test_concurrent_clients_match_sequential(self, max_batch):
        samples = make_samples(17)
        reference_session = make_session(max_batch=max_batch)
        reference = np.stack(
            [reference_session.predict_one(sample) for sample in samples]
        )

        results = {}
        lock = threading.Lock()

        def client(indices):
            for index in indices:
                value = server.predict(samples[index], timeout=30.0)
                with lock:
                    results[index] = value

        with InferenceServer(
            lambda: make_session(max_batch=max_batch),
            workers=3, max_batch=max_batch, max_latency_s=0.002,
        ) as server:
            chunks = np.array_split(np.arange(len(samples)), 4)
            threads = [threading.Thread(target=client, args=(chunk,))
                       for chunk in chunks]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        produced = np.stack([results[i] for i in range(len(samples))])
        # Bit-identical, not merely close: the padded canonical batch
        # shape makes the BLAS reduction order independent of how the
        # batcher grouped requests.
        assert np.array_equal(produced, reference)

    def test_batched_predict_matches_sequential(self):
        session = make_session(max_batch=4)
        samples = make_samples(11)
        batched = session.predict(samples)
        sequential = np.stack([session.predict_one(s) for s in samples])
        assert np.array_equal(batched, sequential)


class _FlakySessionFactory:
    """Builds sessions whose first ``crashes`` predictions raise."""

    def __init__(self, crashes=1, max_batch=4):
        self.remaining = crashes
        self.max_batch = max_batch
        self.lock = threading.Lock()

    def __call__(self):
        real = make_session(max_batch=self.max_batch)
        outer = self

        class Flaky:
            def predict(self, inputs):
                with outer.lock:
                    if outer.remaining > 0:
                        outer.remaining -= 1
                        raise RuntimeError("injected worker crash")
                return real.predict(inputs)

        return Flaky()


class TestCrashRecovery:
    @pytest.fixture(autouse=True)
    def quiet_thread_excepthook(self, monkeypatch):
        # Worker deaths re-raise on purpose (the supervisor watches the
        # thread); keep the expected tracebacks out of the test output.
        monkeypatch.setattr(threading, "excepthook", lambda args: None)

    def test_killed_worker_requests_are_redispatched(self):
        samples = make_samples(9)
        reference_session = make_session(max_batch=4)
        reference = np.stack(
            [reference_session.predict_one(sample) for sample in samples]
        )
        with InferenceServer(
            _FlakySessionFactory(crashes=1), workers=1, max_batch=4,
            max_latency_s=0.002, supervise_interval_s=0.002,
        ) as server:
            futures = [server.submit(sample) for sample in samples]
            produced = np.stack([f.result(timeout=30.0) for f in futures])
            stats = server.stats()
        assert np.array_equal(produced, reference)
        assert stats["restarts"] >= 1
        assert stats["failed"] == 0
        assert stats["completed"] == len(samples)

    def test_exhausted_retry_budget_fails_the_future(self):
        with InferenceServer(
            _FlakySessionFactory(crashes=100), workers=1, max_batch=2,
            max_attempts=2, max_restarts=100,
            max_latency_s=0.002, supervise_interval_s=0.002,
        ) as server:
            future = server.submit(make_samples(1)[0])
            with pytest.raises(RuntimeError, match="injected worker crash"):
                future.result(timeout=30.0)
            stats = server.stats()
        assert stats["failed"] >= 1

    def test_restart_budget_exhaustion_fails_queued_requests(self):
        def doomed_factory():
            raise RuntimeError("factory can never build a session")

        server = InferenceServer(
            doomed_factory, workers=1, max_restarts=2,
            supervise_interval_s=0.002,
        )
        server.start()
        future = server.submit(make_samples(1)[0])
        with pytest.raises(RuntimeError, match="gave up after 2"):
            future.result(timeout=30.0)
        server.stop(drain=False)

    def test_stop_without_drain_fails_leftovers(self):
        batcher_blocker = threading.Event()

        def slow_factory():
            session = make_session()

            class Slow:
                def predict(self, inputs):
                    batcher_blocker.wait(5.0)
                    return session.predict(inputs)

            return Slow()

        server = InferenceServer(
            slow_factory, workers=1, max_batch=1, max_latency_s=0.0
        )
        server.start()
        time.sleep(0.05)  # let the worker block on its first batch
        futures = [server.submit(sample) for sample in make_samples(6)]
        server.stop(drain=False, timeout=1.0)
        batcher_blocker.set()
        outcomes = []
        for future in futures:
            try:
                future.result(timeout=10.0)
                outcomes.append("ok")
            except RuntimeError:
                outcomes.append("stopped")
        # Everything still queued when stop(drain=False) ran must have
        # been failed, not silently dropped.
        assert "stopped" in outcomes
        assert all(done in ("ok", "stopped") for done in outcomes)
