"""Shape manipulation ops: reshape, transpose, indexing, stack, where."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, concatenate, stack, where


def make(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=True)


class TestReshapeTranspose:
    def test_reshape_values(self):
        a = Tensor(np.arange(6, dtype=np.float32))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)
        assert a.reshape(2, -1).shape == (2, 3)

    def test_reshape_gradient(self):
        a = make((2, 6), seed=1)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_default_reverses(self):
        a = make((2, 3, 4), seed=2)
        assert a.T.shape == (4, 3, 2)

    def test_transpose_axes(self):
        a = make((2, 3, 4), seed=3)
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)

    def test_transpose_gradient(self):
        a = make((3, 5), seed=4)
        check_gradients(lambda: (a.T @ a).sum(), [a])


class TestIndexing:
    def test_getitem_values(self):
        a = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert np.allclose(a[1].data, [4, 5, 6, 7])
        assert float(a[2, 3].data) == 11.0
        assert a[0:2].shape == (2, 4)

    def test_getitem_gradient_scatter(self):
        a = make((4, 3), seed=5)
        check_gradients(lambda: (a[1:3] ** 2).sum(), [a])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        index = np.array([0, 0, 2])
        out = a[index]
        out.backward(np.ones(3, dtype=np.float32))
        assert np.allclose(a.grad, [2.0, 0.0, 1.0])

    def test_pad2d(self):
        a = make((1, 1, 3, 3), seed=6)
        padded = a.pad2d(2)
        assert padded.shape == (1, 1, 7, 7)
        assert np.allclose(padded.data[0, 0, 2:5, 2:5], a.data[0, 0])
        check_gradients(lambda: (a.pad2d(1) ** 2).sum(), [a])

    def test_pad2d_zero_is_identity(self):
        a = make((1, 1, 3, 3), seed=7)
        assert a.pad2d(0) is a


class TestCombinators:
    def test_stack_forward_backward(self):
        a = make((2, 3), seed=8)
        b = make((2, 3), seed=9)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        check_gradients(lambda: (stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_concatenate(self):
        a = make((2, 3), seed=10)
        b = make((4, 3), seed=11)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        check_gradients(lambda: (concatenate([a, b], axis=0) ** 2).sum(), [a, b])

    def test_where(self):
        a = make((5,), seed=12)
        b = make((5,), seed=13)
        condition = np.array([True, False, True, False, True])
        out = where(condition, a, b)
        assert np.allclose(out.data, np.where(condition, a.data, b.data))
        check_gradients(lambda: where(condition, a, b).sum(), [a, b])


class TestCloneDetach:
    def test_detach_shares_data_no_grad(self):
        a = make((3,), seed=14)
        d = a.detach()
        assert not d.requires_grad
        assert d.data is a.data

    def test_clone_flows_gradient(self):
        a = make((3,), seed=15)
        check_gradients(lambda: (a.clone() * 2).sum(), [a])

    def test_len_and_repr(self):
        a = Tensor(np.zeros((4, 2), dtype=np.float32))
        assert len(a) == 4
        assert "shape=(4, 2)" in repr(a)
