"""Loss functions and classification helpers."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    accuracy,
    check_gradients,
    cross_entropy,
    log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    softmax,
)


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        probs = softmax(logits)
        assert np.allclose(probs.data.sum(axis=1), 1.0, atol=1e-5)

    def test_log_softmax_stability_with_large_logits(self):
        logits = Tensor(np.array([[1000.0, 1001.0]], dtype=np.float32))
        out = log_softmax(logits)
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_gradient(self):
        rng = np.random.default_rng(1)
        logits = Tensor(rng.standard_normal((3, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (log_softmax(logits) ** 2).sum(), [logits])


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = Tensor(np.array([[2.0, 1.0, 0.1]], dtype=np.float32))
        targets = np.array([0])
        loss = cross_entropy(logits, targets)
        z = logits.data[0]
        expected = -(z[0] - np.log(np.exp(z).sum()))
        assert np.isclose(float(loss.data), expected, atol=1e-5)

    def test_gradient_is_probs_minus_onehot(self):
        rng = np.random.default_rng(2)
        logits = Tensor(rng.standard_normal((5, 3)).astype(np.float32), requires_grad=True)
        targets = np.array([0, 1, 2, 1, 0])
        loss = cross_entropy(logits, targets)
        loss.backward()
        probs = softmax(Tensor(logits.data)).data
        expected = (probs - one_hot(targets, 3)) / 5
        assert np.allclose(logits.grad, expected, atol=1e-5)

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.standard_normal((4, 5)).astype(np.float32), requires_grad=True)
        targets = np.array([1, 0, 4, 2])
        check_gradients(lambda: cross_entropy(logits, targets), [logits])

    def test_label_smoothing_increases_loss_on_confident_model(self):
        logits = Tensor(np.array([[10.0, -10.0]], dtype=np.float32))
        targets = np.array([0])
        plain = float(cross_entropy(logits, targets).data)
        smoothed = float(cross_entropy(logits, targets, label_smoothing=0.2).data)
        assert smoothed > plain

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4), dtype=np.float32)), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3), dtype=np.float32)), np.array([0]))


class TestOtherLosses:
    def test_mse(self):
        prediction = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        target = np.array([0.0, 0.0], dtype=np.float32)
        loss = mse_loss(prediction, Tensor(target))
        assert np.isclose(float(loss.data), 2.5)
        check_gradients(lambda: mse_loss(prediction, Tensor(target)), [prediction])

    def test_nll(self):
        log_probs = Tensor(np.log(np.array([[0.7, 0.3], [0.2, 0.8]], dtype=np.float32)))
        loss = nll_loss(log_probs, np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert np.isclose(float(loss.data), expected, atol=1e-5)


class TestHelpers:
    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]], dtype=np.float32))
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 0])) == 0.5

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])
        assert out.dtype == np.float32
