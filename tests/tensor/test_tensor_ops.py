"""Arithmetic and reduction operations with gradient verification."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients


def make(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32) * scale, requires_grad=True)


class TestForwardValues:
    def test_add(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4.0, 6.0])

    def test_add_scalar(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1.5).data, [2.5, 3.5])
        assert np.allclose((1.5 + a).data, [2.5, 3.5])

    def test_sub(self):
        a = Tensor([5.0, 2.0])
        assert np.allclose((a - 1.0).data, [4.0, 1.0])
        assert np.allclose((10.0 - a).data, [5.0, 8.0])

    def test_mul_div(self):
        a = Tensor([2.0, 4.0])
        assert np.allclose((a * 3).data, [6.0, 12.0])
        assert np.allclose((a / 2).data, [1.0, 2.0])
        assert np.allclose((8.0 / a).data, [4.0, 2.0])

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        assert np.allclose((-a).data, [-2.0, 3.0])
        assert np.allclose((a ** 2).data, [4.0, 9.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        assert np.allclose((a @ b).data, a.data)

    def test_sum_mean(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert float(a.sum().data) == 15.0
        assert float(a.mean().data) == 2.5
        assert np.allclose(a.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_var(self):
        data = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        a = Tensor(data)
        assert np.isclose(float(a.var().data), data.var())

    def test_max(self):
        a = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert float(a.max().data) == 5.0
        assert np.allclose(a.max(axis=0).data, [3.0, 5.0])

    def test_comparisons_return_numpy(self):
        a = Tensor([1.0, 3.0])
        result = a > 2.0
        assert isinstance(result, np.ndarray)
        assert result.tolist() == [False, True]

    def test_elementwise_functions(self):
        a = Tensor([0.0, 1.0])
        assert np.allclose(a.exp().data, np.exp(a.data))
        assert np.allclose(a.sigmoid().data, 1 / (1 + np.exp(-a.data)))
        assert np.allclose(a.tanh().data, np.tanh(a.data))
        b = Tensor([-2.0, 3.0])
        assert np.allclose(b.abs().data, [2.0, 3.0])
        assert np.allclose(b.relu().data, [0.0, 3.0])
        assert np.allclose(b.clip(-1.0, 1.0).data, [-1.0, 1.0])
        assert np.allclose(b.maximum(0.0).data, [0.0, 3.0])

    def test_sqrt_log(self):
        a = Tensor([4.0, 9.0])
        assert np.allclose(a.sqrt().data, [2.0, 3.0])
        assert np.allclose(a.log().data, np.log(a.data))


class TestGradients:
    def test_add_broadcast(self):
        a = make((3, 4), seed=1)
        b = make((4,), seed=2)
        check_gradients(lambda: ((a + b) ** 2).sum(), [a, b])

    def test_mul_broadcast(self):
        a = make((2, 3), seed=3)
        b = make((2, 1), seed=4)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a = make((3,), seed=5)
        b = Tensor(np.array([1.5, 2.0, -1.2], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self):
        a = Tensor(np.array([1.2, 2.0, 0.7], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (a ** 3).sum(), [a])

    def test_matmul(self):
        a = make((3, 4), seed=6, scale=0.5)
        b = make((4, 2), seed=7, scale=0.5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a = make((2, 3, 4), seed=8, scale=0.5)
        b = make((2, 4, 5), seed=9, scale=0.5)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_mean_axis(self):
        a = make((4, 5), seed=10)
        check_gradients(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_var(self):
        a = make((6,), seed=11)
        check_gradients(lambda: a.var(), [a])

    def test_exp_log_chain(self):
        a = Tensor(np.array([0.5, 1.0, 2.0], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: (a.exp() + 1.0).log().sum(), [a])

    def test_sigmoid_tanh(self):
        a = make((5,), seed=12)
        check_gradients(lambda: a.sigmoid().sum(), [a])
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_sqrt(self):
        a = Tensor(np.array([1.0, 4.0, 2.5], dtype=np.float32), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_maximum(self):
        a = make((4,), seed=13)
        b = make((4,), seed=14)
        check_gradients(lambda: a.maximum(b).sum(), [a, b])

    def test_gradient_accumulates_on_reuse(self):
        a = Tensor([2.0], requires_grad=True)
        loss = a * a + a  # df/da = 2a + 1 = 5
        loss.backward()
        assert np.isclose(a.grad[0], 5.0)

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        (a * 3).backward()
        assert np.isclose(a.grad[0], 5.0)

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None


class TestBackwardSemantics:
    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 0.5], dtype=np.float32))
        assert np.allclose(a.grad, [3.0, 1.5])

    def test_no_grad_for_constant_tensors(self):
        a = Tensor([1.0])
        out = a * 2
        assert not out.requires_grad
        assert out._prev == ()
