"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, no_grad

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False, width=32
)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    assert np.allclose(t.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-5, max_value=5, allow_nan=False, width=32))
def test_scalar_mul_gradient(data, scalar):
    t = Tensor(data, requires_grad=True)
    (t * scalar).sum().backward()
    assert np.allclose(t.grad, np.full_like(data, scalar), atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_linearity_of_backward(data):
    """grad of (f + g) equals grad f + grad g for f = 2x, g = 3x."""
    t1 = Tensor(data, requires_grad=True)
    ((t1 * 2) + (t1 * 3)).sum().backward()
    assert np.allclose(t1.grad, np.full_like(data, 5.0), atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_gradient_is_indicator(data):
    t = Tensor(data, requires_grad=True)
    t.relu().sum().backward()
    assert np.allclose(t.grad, (data > 0).astype(np.float32))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_reshape_preserves_gradient_sum(data):
    t = Tensor(data, requires_grad=True)
    (t.reshape(-1) ** 2).sum().backward()
    assert np.allclose(t.grad, 2 * data, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float32, (3, 4), elements=finite_floats),
    arrays(np.float32, (4,), elements=finite_floats),
)
def test_broadcast_add_gradient_shapes(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    assert ta.grad.shape == a.shape
    assert tb.grad.shape == b.shape
    # Broadcast axis gradient sums over the expanded dimension.
    assert np.allclose(tb.grad, np.full_like(b, 3.0))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_no_grad_blocks_tape(data):
    t = Tensor(data, requires_grad=True)
    with no_grad():
        out = (t * 2).sum()
    assert not out.requires_grad
    assert out._prev == ()


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_detach_then_op_has_no_gradient(data):
    t = Tensor(data, requires_grad=True)
    out = (t.detach() * 2).sum()
    assert not out.requires_grad


@settings(max_examples=30, deadline=None)
@given(arrays(np.float32, (2, 3), elements=finite_floats))
def test_transpose_twice_gradient_identity(data):
    t = Tensor(data, requires_grad=True)
    (t.T.T * 1.0).sum().backward()
    assert np.allclose(t.grad, np.ones_like(data))
