"""Matmul vector/matrix edge cases (the 1-D code paths)."""

import numpy as np

from repro.tensor import Tensor, check_gradients


def make(shape, seed=0):
    return Tensor(
        np.random.default_rng(seed).standard_normal(shape).astype(np.float32),
        requires_grad=True,
    )


class TestVectorMatmul:
    def test_vec_mat_forward(self):
        v = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        m = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32))
        assert np.allclose((v @ m).data, [1.0, 2.0])

    def test_vec_mat_gradients(self):
        v = make(4, seed=1)
        m = make((4, 3), seed=2)
        check_gradients(lambda: (v @ m).sum(), [v, m])

    def test_mat_vec_gradients(self):
        m = make((3, 4), seed=3)
        v = make(4, seed=4)
        check_gradients(lambda: (m @ v).sum(), [m, v])

    def test_vec_vec_inner_product(self):
        a = make(5, seed=5)
        b = make(5, seed=6)
        out = a @ b
        assert out.shape == ()
        check_gradients(lambda: a @ b, [a, b])

    def test_batched_times_shared_matrix(self):
        batch = make((2, 3, 4), seed=7)
        shared = make((4, 2), seed=8)
        out = batch @ shared
        assert out.shape == (2, 3, 2)
        check_gradients(lambda: (batch @ shared).sum(), [batch, shared])
