"""Convolution/pooling kernels: values against a naive reference and
gradients against finite differences."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    col2im,
    conv2d,
    conv_output_shape,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b, stride, padding):
    """Direct-loop reference convolution."""
    n, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    out_h = conv_output_shape(h, kh, stride, padding)
    out_w = conv_output_shape(wd, kw, stride, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, f, out_h, out_w), dtype=np.float64)
    for i in range(n):
        for j in range(f):
            for y in range(out_h):
                for z in range(out_w):
                    patch = xp[i, :, y * stride:y * stride + kh, z * stride:z * stride + kw]
                    out[i, j, y, z] = (patch * w[j]).sum()
            if b is not None:
                out[i, j] += b[j]
    return out.astype(np.float32)


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride, padding)
        assert np.allclose(out.data, expected, atol=1e-4)

    def test_no_bias(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        out = conv2d(Tensor(x), Tensor(w), None, padding=1)
        expected = naive_conv2d(x, w, None, 1, 1)
        assert np.allclose(out.data, expected, atol=1e-4)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((3, 5, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            conv2d(x, w, None)

    def test_output_shape_helper(self):
        assert conv_output_shape(32, 3, 1, 1) == 32
        assert conv_output_shape(32, 3, 2, 1) == 16
        assert conv_output_shape(5, 5, 1, 0) == 1


class TestIm2Col:
    def test_roundtrip_identity_for_unit_stride_kernel1(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        cols = im2col(x, (1, 1), (1, 1), (0, 0))
        back = col2im(cols, x.shape, (1, 1), (1, 1), (0, 0))
        assert np.allclose(back, x)

    def test_col2im_counts_overlaps(self):
        # With a 2x2 kernel at stride 1, interior pixels appear in 4 patches.
        x = np.ones((1, 1, 3, 3), dtype=np.float32)
        cols = im2col(x, (2, 2), (1, 1), (0, 0))
        back = col2im(cols, x.shape, (2, 2), (1, 1), (0, 0))
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0
        assert back[0, 0, 0, 1] == 2.0

    def test_im2col_shape(self):
        x = np.zeros((2, 3, 8, 8), dtype=np.float32)
        cols = im2col(x, (3, 3), (2, 2), (1, 1))
        assert cols.shape == (2, 27, 16)


class TestConvGradients:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_gradcheck(self, stride, padding):
        rng = np.random.default_rng(3)
        x = Tensor(rng.standard_normal((2, 2, 5, 5)).astype(np.float32), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32) * 0.4, requires_grad=True)
        b = Tensor(rng.standard_normal(3).astype(np.float32) * 0.1, requires_grad=True)
        check_gradients(
            lambda: (conv2d(x, w, b, stride=stride, padding=padding) ** 2).sum(), [x, w, b]
        )


class TestPooling:
    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        assert out.shape == (1, 1, 2, 2)
        assert np.allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        assert np.allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool_gradient(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((2, 3, 4, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_max_pool_gradient(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.standard_normal((2, 2, 4, 4)).astype(np.float32), requires_grad=True)
        check_gradients(lambda: (max_pool2d(x, 2) ** 2).sum(), [x])

    def test_pool_with_stride(self):
        x = Tensor(np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5))
        out = avg_pool2d(x, 3, stride=2)
        assert out.shape == (1, 1, 2, 2)
