"""The documentation's code snippets stay runnable.

Every ``>>>`` example in README.md and docs/*.md is executed here via
doctest, so a drifting API breaks the build instead of the docs.  All
snippets are written against tiny deterministic workloads, which keeps
this in the ``smoke`` subset.
"""

import doctest
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOCUMENTS = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]


@pytest.mark.smoke
@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda path: path.name)
def test_markdown_snippets_run(path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.attempted > 0, f"{path.name} has no doctest examples"
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {path.name}"


def test_every_doc_is_covered():
    """The docs suite the ISSUE asks for exists and is non-empty."""
    names = {path.name for path in DOCUMENTS}
    assert {"architecture.md", "methods.md", "distributed_sweeps.md",
            "serving.md", "streaming.md", "README.md"} <= names
