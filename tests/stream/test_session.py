"""Stateful streaming sessions: the bit-identity and lifecycle contract.

The load-bearing claim: every window a session emits is **bit-identical**
to the offline ``forward_window`` pass over the same encoded frames —
for tumbling and sliding windows, dense and frozen-CSR execution, and
every online encoder.
"""

import numpy as np
import pytest

from repro.data.telemetry import make_telemetry_stream
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.stream import (
    AdaptiveStreamSession,
    ListSource,
    StreamEvent,
    StreamSession,
)

CHANNELS = 6


def make_session(execution="dense", window=4, stride=None, encoder="direct",
                 seed=0, density=0.5, **kwargs):
    model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=window,
                       rng=np.random.default_rng(seed))
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: density for name in manager.states})
    manager.set_execution(execution)
    manager.freeze()
    return StreamSession(model, window=window, stride=stride, encoder=encoder,
                         manager=manager, **kwargs)


def make_feed(streams=2, events=16, seed=0):
    return list(make_telemetry_stream(
        num_streams=streams, num_channels=CHANNELS, num_events=events, seed=seed,
    ))


def run_feed(session, feed):
    return [r for e in feed if (r := session.process(e)) is not None]


def gapped_events(times, stream_id="dev"):
    channels = np.linspace(0.1, 0.9, CHANNELS).astype(np.float32)
    return [StreamEvent(stream_id=stream_id, timestamp=t, channels=channels)
            for t in times]


class TestBitIdentity:
    @pytest.mark.parametrize("encoder", ["direct", "rate", "latency"])
    @pytest.mark.parametrize("execution", ["dense", "csr"])
    def test_tumbling_matches_offline_window(self, encoder, execution):
        session = make_session(execution=execution, encoder=encoder)
        results = run_feed(session, make_feed())
        assert results  # windows actually closed
        for result in results:
            reference = session.offline_reference(result.frames)
            assert np.array_equal(reference, result.logits)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_sliding_matches_offline_window(self, stride):
        session = make_session(stride=stride, encoder="rate")
        results = run_feed(session, make_feed(streams=1, events=12))
        # stride s emits every s events once the first window fills.
        assert len(results) == (12 - session.window) // stride + 1
        for result in results:
            assert len(result.frames) == session.window
            reference = session.offline_reference(result.frames)
            assert np.array_equal(reference, result.logits)

    def test_interleaving_does_not_leak_state_across_streams(self):
        feed = make_feed(streams=3, events=8)
        multiplexed = make_session(encoder="rate")
        by_stream = {}
        for result in run_feed(multiplexed, feed):
            by_stream.setdefault(result.stream_id, []).append(result.logits)
        assert len(by_stream) == 3
        for stream_id, logits in by_stream.items():
            solo = make_session(encoder="rate")
            alone = run_feed(
                solo, [e for e in feed if e.stream_id == stream_id]
            )
            assert len(alone) == len(logits)
            for a, b in zip(alone, logits):
                assert np.array_equal(a.logits, b)


class TestWindowing:
    def test_tumbling_window_counts(self):
        session = make_session(window=4)
        results = run_feed(session, make_feed(streams=1, events=11))
        assert [r.window_index for r in results] == [0, 1]
        assert all(r.events_in_window == 4 for r in results)
        assert session.stats()["device-00"]["buffered"] == 3

    def test_flush_emits_partials_bit_identical(self):
        session = make_session(window=4)
        run_feed(session, make_feed(streams=2, events=6))
        flushed = session.flush()
        assert {r.stream_id for r in flushed} == {"device-00", "device-01"}
        for result in flushed:
            assert result.partial
            assert result.events_in_window == 2
            reference = session.offline_reference(result.frames)
            assert np.array_equal(reference, result.logits)
        assert session.flush() == []  # windows were reset

    def test_prediction_is_argmax(self):
        session = make_session()
        (result,) = run_feed(session, make_feed(streams=1, events=4))
        assert result.prediction == int(np.argmax(result.logits))


class TestStaleness:
    def test_ttl_gap_resets_the_window(self):
        session = make_session(window=3, ttl=1.0)
        events = gapped_events([0.0, 0.2, 5.0, 5.1, 5.2])
        results = [session.process(e) for e in events]
        # The stale event at t=5 dropped the two buffered frames, so the
        # window closes on the third post-gap event, not earlier.
        assert [r is not None for r in results] == [False] * 4 + [True]
        assert session.stats()["dev"]["stale_resets"] == 1
        # Post-reset output is exactly a fresh-stream pass.
        fresh = make_session(window=3, ttl=1.0)
        golden = [fresh.process(e) for e in gapped_events([5.0, 5.1, 5.2])]
        assert np.array_equal(golden[-1].logits, results[-1].logits)

    def test_carry_policy_counts_but_keeps_state(self):
        session = make_session(window=3, ttl=1.0, reset_policy="carry")
        results = [session.process(e) for e in gapped_events([0.0, 0.2, 5.0])]
        assert results[-1] is not None  # window closed despite the gap
        assert session.stats()["dev"]["stale_resets"] == 1

    def test_within_ttl_no_reset(self):
        session = make_session(window=3, ttl=10.0)
        [session.process(e) for e in gapped_events([0.0, 5.0, 9.0])]
        assert session.stats()["dev"]["stale_resets"] == 0


class TestTransactionality:
    def test_crash_mid_event_retries_bit_identical(self):
        feed = make_feed(streams=2, events=8)
        golden = run_feed(make_session(encoder="rate"), feed)

        session = make_session(encoder="rate")
        crash_at = len(feed) // 2
        results = []
        for index, ev in enumerate(feed):
            if index == crash_at:
                def crashing_step(net_state, frame):
                    raise RuntimeError("injected crash")
                session._step = crashing_step
                with pytest.raises(RuntimeError, match="injected crash"):
                    session.process(ev)
                del session.__dict__["_step"]  # worker restarted
            result = session.process(ev)  # retry the same event
            if result is not None:
                results.append(result)

        assert len(results) == len(golden)
        for want, got in zip(golden, results):
            assert want.stream_id == got.stream_id
            assert np.array_equal(want.logits, got.logits)


class TestLifecycle:
    def test_stats_and_drop_stream(self):
        session = make_session()
        run_feed(session, make_feed(streams=2, events=5))
        stats = session.stats()
        assert set(stats) == {"device-00", "device-01"}
        assert stats["device-00"]["events"] == 5
        assert stats["device-00"]["windows"] == 1
        session.drop_stream("device-00")
        assert session.stream_ids == ["device-01"]
        session.drop_stream("ghost")  # idempotent

    def test_width_change_is_rejected(self):
        session = make_session()
        session.process(StreamEvent("dev", 0.0, np.zeros(CHANNELS, np.float32)))
        with pytest.raises(ValueError, match="changed width"):
            session.process(StreamEvent("dev", 1.0, np.zeros(CHANNELS + 1, np.float32)))

    def test_validation(self):
        model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=4,
                           rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="window"):
            StreamSession(model, window=0)
        with pytest.raises(ValueError, match="stride"):
            StreamSession(model, window=4, stride=5)
        with pytest.raises(ValueError, match="stride"):
            StreamSession(model, window=4, stride=0)
        with pytest.raises(ValueError, match="reset_policy"):
            StreamSession(model, reset_policy="explode")
        with pytest.raises(ValueError, match="ttl"):
            StreamSession(model, ttl=0.0)
        with pytest.raises(ValueError, match="unknown online encoder"):
            StreamSession(model, encoder="morse")

    def test_requires_frozen_manager(self):
        model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=4,
                           rng=np.random.default_rng(0))
        manager = SparsityManager(model, rng=np.random.default_rng(1))
        manager.init_random({name: 0.5 for name in manager.states})
        with pytest.raises(ValueError, match="AdaptiveStreamSession"):
            StreamSession(model, manager=manager)
        # The adaptive subclass accepts (and thaws) the same manager.
        assert AdaptiveStreamSession(model, manager).manager is manager
