"""Stream fault model: dropout, stalls, reconnects, and TTL interplay."""

import numpy as np
import pytest

from repro.data.telemetry import make_telemetry_stream
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.stream import StreamFaultInjector, StreamSession
from repro.train.faults import parse_fault_spec

CHANNELS = 6


def make_feed(streams=1, events=12, seed=0):
    return list(make_telemetry_stream(
        num_streams=streams, num_channels=CHANNELS, num_events=events, seed=seed,
    ))


class TestSpecHandling:
    def test_weight_scope_specs_are_rejected(self):
        with pytest.raises(ValueError, match="FaultInjectionCallback"):
            StreamFaultInjector(["noise:sigma=0.1"])

    def test_accepts_strings_and_parsed_specs(self):
        injector = StreamFaultInjector(
            ["stall", parse_fault_spec("channel_dropout:p=0.5")]
        )
        assert [spec.kind for spec in injector.specs] == [
            "stall", "channel_dropout",
        ]
        assert "stall" in repr(injector)


class TestChannelDropout:
    def test_full_dropout_zeroes_every_channel(self):
        injector = StreamFaultInjector(["channel_dropout:fraction=1.0,p=1.0"])
        faulted = list(injector.apply(make_feed()))
        assert len(faulted) == 12
        for event in faulted:
            assert np.array_equal(event.channels, np.zeros(CHANNELS, np.float32))
        assert injector.counts["channel_dropout"] == 12

    def test_partial_dropout_keeps_events_well_formed(self):
        feed = make_feed()
        injector = StreamFaultInjector(["channel_dropout:fraction=0.5,p=1.0"])
        faulted = list(injector.apply(feed))
        zeroed = sum(
            int((f.channels == 0).sum()) - int((o.channels == 0).sum())
            for f, o in zip(faulted, feed)
        )
        assert 0 < zeroed < 12 * CHANNELS
        for f, o in zip(faulted, feed):
            assert f.num_channels == o.num_channels
            assert f.timestamp == o.timestamp  # dropout never shifts time

    def test_original_events_are_not_mutated(self):
        feed = make_feed(events=4)
        pristine = [event.channels.copy() for event in feed]
        list(StreamFaultInjector(["channel_dropout:fraction=1.0,p=1.0"]).apply(feed))
        for event, expected in zip(feed, pristine):
            assert np.array_equal(event.channels, expected)


class TestStall:
    def test_stall_shifts_later_events_cumulatively(self):
        feed = make_feed(events=4)
        injector = StreamFaultInjector(["stall:duration=5.0,p=1.0"])
        faulted = list(injector.apply(feed))
        for index, (f, o) in enumerate(zip(faulted, feed)):
            assert np.isclose(f.timestamp - o.timestamp, 5.0 * (index + 1))
        assert injector.counts["stall"] == 4

    def test_stall_offsets_are_per_stream(self):
        feed = make_feed(streams=2, events=4)
        # Seed chosen so at least one stall fires on each stream.
        injector = StreamFaultInjector(["stall:duration=100.0,p=0.5"], seed=3)
        faulted = list(injector.apply(feed))
        offsets = {}
        for f, o in zip(faulted, feed):
            offsets.setdefault(f.stream_id, []).append(f.timestamp - o.timestamp)
        # Offsets never decrease within a stream (time only stalls forward).
        for per_stream in offsets.values():
            assert all(b >= a for a, b in zip(per_stream, per_stream[1:]))


class TestReconnect:
    def test_reconnect_loses_events_and_opens_a_gap(self):
        feed = make_feed(events=10)
        injector = StreamFaultInjector(["reconnect:gap=9.0,drop=1,p=1.0"])
        faulted = list(injector.apply(feed))
        # p=1, drop=1: every delivered event triggers a reconnect that
        # eats the next one — half the feed survives.
        assert len(faulted) == 5
        assert injector.counts["reconnect"] == 5
        gaps = np.diff([f.timestamp for f in faulted])
        assert (gaps > 9.0).all()


class TestDeterminismAndIntegration:
    def test_same_seed_same_faulted_feed(self):
        feed = make_feed(streams=2, events=8)
        spec = ["channel_dropout:fraction=0.5,p=0.5", "stall:duration=2.0,p=0.3"]
        first = list(StreamFaultInjector(spec, seed=7).apply(feed))
        second = list(StreamFaultInjector(spec, seed=7).apply(feed))
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.timestamp == b.timestamp
            assert np.array_equal(a.channels, b.channels)
        different = list(StreamFaultInjector(spec, seed=8).apply(feed))
        assert any(
            a.timestamp != b.timestamp or not np.array_equal(a.channels, b.channels)
            for a, b in zip(first, different)
        )

    def test_stalls_trip_the_session_ttl_without_worker_loss(self):
        model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=4,
                           rng=np.random.default_rng(0))
        manager = SparsityManager(model, rng=np.random.default_rng(1))
        manager.init_random({name: 0.5 for name in manager.states})
        manager.freeze()
        session = StreamSession(model, window=4, manager=manager, ttl=0.5)
        injector = StreamFaultInjector(["stall:duration=5.0,p=0.4"], seed=0)
        feed = make_feed(streams=2, events=24)
        results = [
            r for e in injector.apply(feed) if (r := session.process(e)) is not None
        ]
        stats = session.stats()
        assert sum(s["stale_resets"] for s in stats.values()) > 0
        assert sum(s["events"] for s in stats.values()) == len(feed)
        for result in results:  # degraded input, still exact inference
            reference = session.offline_reference(result.frames)
            assert np.array_equal(reference, result.logits)
