"""Event-stream layer: records, sources, merge, synthetic telemetry."""

import numpy as np
import pytest

from repro.data.telemetry import TelemetrySource, make_telemetry_stream, stream_seed
from repro.stream import EventStream, ListSource, StreamEvent


def event(stream_id="s", timestamp=0.0, channels=(0.5, 0.5)):
    return StreamEvent(stream_id=stream_id, timestamp=timestamp,
                       channels=np.asarray(channels))


class TestStreamEvent:
    def test_channels_coerced_to_float32_vector(self):
        made = event(channels=[0.25, 0.5, 1.0])
        assert made.channels.dtype == np.float32
        assert made.num_channels == 3

    def test_rejects_non_1d_channels(self):
        with pytest.raises(ValueError, match="1-D"):
            StreamEvent(stream_id="s", timestamp=0.0,
                        channels=np.zeros((2, 2), dtype=np.float32))

    def test_immutable(self):
        made = event()
        with pytest.raises(AttributeError):
            made.timestamp = 1.0


class TestListSource:
    def test_replays_in_order(self):
        events = [event(timestamp=t) for t in (0.0, 1.0, 1.0, 2.0)]
        source = ListSource("s", events)
        assert [e.timestamp for e in source] == [0.0, 1.0, 1.0, 2.0]
        # Restartable: a second pass yields the same sequence.
        assert [e.timestamp for e in source.events()] == [0.0, 1.0, 1.0, 2.0]

    def test_rejects_out_of_order_timestamps(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            ListSource("s", [event(timestamp=1.0), event(timestamp=0.5)])

    def test_rejects_foreign_stream_ids(self):
        with pytest.raises(ValueError, match="stream_id"):
            ListSource("a", [event(stream_id="b")])


class TestEventStream:
    def make(self):
        first = ListSource("a", [event("a", t) for t in (0.0, 2.0, 4.0)])
        second = ListSource("b", [event("b", t) for t in (1.0, 3.0)])
        return EventStream([first, second])

    def test_merge_is_globally_time_ordered(self):
        merged = list(self.make())
        assert [e.stream_id for e in merged] == ["a", "b", "a", "b", "a"]
        times = [e.timestamp for e in merged]
        assert times == sorted(times)

    def test_ties_break_by_registration_order(self):
        first = ListSource("a", [event("a", 1.0)])
        second = ListSource("b", [event("b", 1.0)])
        merged = list(EventStream([first, second]))
        assert [e.stream_id for e in merged] == ["a", "b"]

    def test_replay_is_deterministic(self):
        stream = self.make()
        assert [e.timestamp for e in stream] == [e.timestamp for e in stream]

    def test_take_limits_the_feed(self):
        taken = self.make().take(3)
        assert [e.stream_id for e in taken] == ["a", "b", "a"]

    def test_stream_ids(self):
        assert self.make().stream_ids == ["a", "b"]

    def test_rejects_duplicate_ids_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            EventStream([ListSource("a", []), ListSource("a", [])])
        with pytest.raises(ValueError, match="at least one"):
            EventStream([])


class TestTelemetrySource:
    def test_replay_is_byte_identical(self):
        source = TelemetrySource("dev", num_channels=4, num_events=16, seed=3)
        first, second = list(source.events()), list(source.events())
        assert len(first) == 16
        for a, b in zip(first, second):
            assert a.timestamp == b.timestamp
            assert np.array_equal(a.channels, b.channels)

    def test_arrival_is_irregular(self):
        source = TelemetrySource("dev", num_channels=2, num_events=32, seed=0)
        times = [e.timestamp for e in source]
        gaps = np.diff(times)
        assert (gaps > 0).all()
        assert gaps.std() > 0  # exponential arrivals, not a fixed clock

    def test_values_feed_rate_encoders(self):
        for made in TelemetrySource("dev", num_channels=8, num_events=8):
            assert made.channels.dtype == np.float32
            assert (made.channels >= 0.0).all() and (made.channels <= 1.0).all()

    def test_distinct_streams_distinct_sequences(self):
        assert stream_seed(0, "a") != stream_seed(0, "b")
        a = next(iter(TelemetrySource("a", num_channels=4, num_events=1)))
        b = next(iter(TelemetrySource("b", num_channels=4, num_events=1)))
        assert not np.array_equal(a.channels, b.channels)

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetrySource("dev", num_channels=0)
        with pytest.raises(ValueError):
            TelemetrySource("dev", rate_hz=0.0)

    def test_make_telemetry_stream_names_devices(self):
        stream = make_telemetry_stream(num_streams=3, num_channels=4, num_events=4)
        assert stream.stream_ids == ["device-00", "device-01", "device-02"]
        assert len(list(stream)) == 12
