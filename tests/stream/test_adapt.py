"""Continual online adaptation: density held, activity-guided rewiring."""

import numpy as np
import pytest

from repro.data.telemetry import make_telemetry_stream
from repro.snn.models import SpikingMLP
from repro.sparse import SparsityManager
from repro.stream import AdaptiveStreamSession, OnlineAdaptation

CHANNELS = 6


def make_pair(seed=0, density=0.5, window=4):
    model = SpikingMLP(CHANNELS, 3, hidden=(10,), timesteps=window,
                       rng=np.random.default_rng(seed))
    manager = SparsityManager(model, rng=np.random.default_rng(seed + 1))
    manager.init_random({name: density for name in manager.states})
    return model, manager


def make_feed(streams=1, events=24, seed=0):
    return list(make_telemetry_stream(
        num_streams=streams, num_channels=CHANNELS, num_events=events, seed=seed,
    ))


def run_feed(session, feed):
    return [r for e in feed if (r := session.process(e)) is not None]


class TestAdaptiveStreamSession:
    def test_density_held_exactly_across_rounds(self):
        model, manager = make_pair()
        before = {name: manager.nonzero_count(name) for name in manager.states}
        session = AdaptiveStreamSession(model, manager, adapt_every=1, window=4)
        run_feed(session, make_feed(events=24))
        assert session.adaptation_rounds == 6
        after = {name: manager.nonzero_count(name) for name in manager.states}
        assert after == before

    def test_masks_actually_rewire(self):
        model, manager = make_pair()
        before = manager.copy_masks()
        session = AdaptiveStreamSession(model, manager, adapt_every=1,
                                        death_rate=0.3, window=4)
        run_feed(session, make_feed(events=16))
        after = manager.copy_masks()
        assert any(not np.array_equal(before[n], after[n]) for n in before)

    def test_adaptation_cadence_and_history(self):
        model, manager = make_pair()
        session = AdaptiveStreamSession(model, manager, adapt_every=3, window=4)
        run_feed(session, make_feed(events=24))  # 6 windows -> 2 rounds
        assert session.adaptation_rounds == 2
        assert len(session.method.history) == 2
        record = session.method.history[0]
        assert record.total_dropped == record.total_grown

    def test_frozen_manager_is_thawed(self):
        model, manager = make_pair()
        manager.freeze()
        session = AdaptiveStreamSession(model, manager)
        assert not manager.frozen
        assert session.manager is manager

    def test_activity_emas_populate_for_matching_layers(self):
        model, manager = make_pair()
        session = AdaptiveStreamSession(model, manager, window=4)
        run_feed(session, make_feed(events=8))
        method = session.method
        assert method.activity  # at least the input layer observed
        for name, ema in method.activity.items():
            assert ema.shape == (manager.states[name].shape[-1],)
            assert ema.dtype == np.float32
            assert np.isfinite(ema).all()

    def test_emitted_windows_stay_finite_under_adaptation(self):
        model, manager = make_pair()
        session = AdaptiveStreamSession(model, manager, adapt_every=1,
                                        window=4, encoder="rate")
        results = run_feed(session, make_feed(streams=2, events=12))
        assert results
        for result in results:
            assert np.isfinite(result.logits).all()

    def test_validation(self):
        model, manager = make_pair()
        with pytest.raises(ValueError, match="adapt_every"):
            AdaptiveStreamSession(model, manager, adapt_every=0)
        with pytest.raises(ValueError, match="death_rate"):
            OnlineAdaptation(model, manager, death_rate=0.0)
        with pytest.raises(ValueError, match="ema_decay"):
            OnlineAdaptation(model, manager, ema_decay=1.0)


class TestOnlineAdaptation:
    def test_update_before_observation_falls_back_to_magnitude(self):
        model, manager = make_pair()
        method = OnlineAdaptation(model, manager, death_rate=0.2,
                                  rng=np.random.default_rng(0))
        method.setup()
        before = {name: manager.nonzero_count(name) for name in manager.states}
        assert all(method.drop_scores(name) is None for name in manager.states)
        method.update_topology(1)  # no EMA yet: magnitude/random path
        after = {name: manager.nonzero_count(name) for name in manager.states}
        assert after == before

    def test_scores_favor_active_inputs(self):
        model, manager = make_pair(density=1.0)
        method = OnlineAdaptation(model, manager, ema_decay=0.0)
        frame = np.zeros((1, CHANNELS), dtype=np.float32)
        frame[0, 0] = 1.0
        # Observe without running the model: only the input layer's EMA
        # (frame-aligned) is exercised here.
        method.observe(frame)
        (input_layer,) = [
            name for name, state in manager.states.items()
            if state.shape[-1] == CHANNELS
        ]
        scores = method.drop_scores(input_layer)
        assert scores is not None
        # Column 0 saw activity 1.0, the rest 0.0 — its scores dominate
        # for any fixed row magnitude.
        assert scores[:, 0].min() > scores[:, 1:].max() * 0.9

    def test_ema_decays_toward_recent_activity(self):
        model, manager = make_pair(density=1.0)
        method = OnlineAdaptation(model, manager, ema_decay=0.5)
        hot = np.ones((1, CHANNELS), dtype=np.float32)
        cold = np.zeros((1, CHANNELS), dtype=np.float32)
        method.observe(hot)
        method.observe(cold)
        (input_layer,) = [
            name for name, state in manager.states.items()
            if state.shape[-1] == CHANNELS
        ]
        assert np.allclose(method.activity[input_layer], 0.5)
