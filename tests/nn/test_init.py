"""Weight initialization schemes."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = init._fan_in_out((10, 20))
        assert fan_in == 20 and fan_out == 10

    def test_conv_shape(self):
        fan_in, fan_out = init._fan_in_out((8, 4, 3, 3))
        assert fan_in == 4 * 9 and fan_out == 8 * 9

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init._fan_in_out((5,))


class TestDistributions:
    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        weights = init.kaiming_uniform((64, 32), rng=rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 32)
        assert np.abs(weights).max() <= bound
        assert weights.dtype == np.float32

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(1)
        weights = init.kaiming_normal((400, 100), rng=rng)
        expected_std = math.sqrt(2.0) / math.sqrt(100)
        assert abs(weights.std() - expected_std) < expected_std * 0.1

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(2)
        weights = init.xavier_uniform((30, 50), rng=rng)
        bound = math.sqrt(6.0 / 80)
        assert np.abs(weights).max() <= bound

    def test_bias_bound(self):
        rng = np.random.default_rng(3)
        bias = init.uniform_bias((10,), (10, 25), rng=rng)
        assert np.abs(bias).max() <= 1.0 / math.sqrt(25)

    def test_determinism_with_same_rng_seed(self):
        a = init.kaiming_uniform((5, 5), rng=np.random.default_rng(7))
        b = init.kaiming_uniform((5, 5), rng=np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_set_default_seed(self):
        init.set_default_seed(99)
        a = init.kaiming_uniform((4, 4))
        init.set_default_seed(99)
        b = init.kaiming_uniform((4, 4))
        assert np.array_equal(a, b)
