"""Layer behaviour and gradients."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.tensor import Tensor, check_gradients


def randn(shape, seed=0, scale=1.0):
    return (np.random.default_rng(seed).standard_normal(shape) * scale).astype(np.float32)


class TestLinear:
    def test_forward_matches_manual(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = randn((4, 3), seed=1)
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(2))
        x = Tensor(randn((2, 3), seed=3), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])


class TestConvLayer:
    def test_output_shape(self):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        out = layer(Tensor(randn((2, 3, 8, 8), seed=1)))
        assert out.shape == (2, 8, 4, 4)

    def test_gradients(self):
        layer = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(4))
        x = Tensor(randn((1, 2, 4, 4), seed=5), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])


class TestBatchNorm:
    def test_normalizes_in_training(self):
        layer = BatchNorm2d(4)
        x = Tensor(randn((8, 4, 5, 5), seed=6, scale=3.0) + 2.0)
        out = layer(x)
        # Per-channel mean ~0 and var ~1 after normalization.
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(out.data.var(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        layer = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 3, 3), 10.0, dtype=np.float32))
        layer(x)
        assert np.all(layer.running_mean > 0)

    def test_eval_uses_running_stats(self):
        layer = BatchNorm2d(2)
        x = Tensor(randn((4, 2, 3, 3), seed=7))
        layer(x)
        layer.eval()
        y = Tensor(np.zeros((1, 2, 3, 3), dtype=np.float32))
        out = layer(y)
        expected = (0.0 - layer.running_mean) / np.sqrt(layer.running_var + layer.eps)
        assert np.allclose(out.data[0, :, 0, 0], expected, atol=1e-4)

    def test_gradients(self):
        layer = BatchNorm2d(2)
        x = Tensor(randn((3, 2, 2, 2), seed=8), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])

    def test_input_validation(self):
        layer = BatchNorm2d(2)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 2), dtype=np.float32)))

    def test_batchnorm1d(self):
        layer = BatchNorm1d(3)
        x = Tensor(randn((16, 3), seed=9, scale=2.0) - 1.0)
        out = layer(x)
        assert np.allclose(out.data.mean(axis=0), 0.0, atol=1e-4)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))


class TestPoolingLayers:
    def test_avg_and_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        assert AvgPool2d(2)(x).shape == (1, 1, 2, 2)
        assert float(MaxPool2d(2)(x).data[0, 0, 0, 0]) == 5.0


class TestDropout:
    def test_identity_in_eval(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones((10, 10), dtype=np.float32))
        assert np.allclose(layer(x).data, 1.0)

    def test_scales_in_train(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = layer(x).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.4 < (out > 0).mean() < 0.6

    def test_p_zero_is_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones((5, 5), dtype=np.float32))
        assert layer(x) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestMisc:
    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4, 5), dtype=np.float32))
        assert Flatten()(x).shape == (2, 60)

    def test_relu_layer(self):
        x = Tensor(np.array([-1.0, 2.0], dtype=np.float32))
        assert np.allclose(ReLU()(x).data, [0.0, 2.0])

    def test_identity(self):
        x = Tensor(np.zeros(3, dtype=np.float32))
        assert Identity()(x) is x

    def test_sequential_composition_gradients(self):
        model = Sequential(
            Linear(4, 8, rng=np.random.default_rng(10)),
            ReLU(),
            Linear(8, 2, rng=np.random.default_rng(11)),
        )
        x = Tensor(randn((3, 4), seed=12), requires_grad=True)
        check_gradients(lambda: (model(x) ** 2).sum(), [x, model[0].weight])
