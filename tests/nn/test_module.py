"""Module system: registration, iteration, state dicts, train/eval."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential
from repro.tensor import Tensor


class Branchy(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 3, rng=np.random.default_rng(0))
        self.extra = Parameter(np.ones(2, dtype=np.float32))
        self.register_buffer("counter", np.zeros(1, dtype=np.float32))

    def forward(self, x):
        return self.linear(x)


class TestRegistration:
    def test_parameters_discovered(self):
        model = Branchy()
        names = [name for name, _ in model.named_parameters()]
        assert set(names) == {"extra", "linear.weight", "linear.bias"}

    def test_reassignment_keeps_registry_consistent(self):
        model = Branchy()
        model.extra = "not a parameter anymore"
        names = [name for name, _ in model.named_parameters()]
        assert "extra" not in names

    def test_named_modules(self):
        model = Branchy()
        names = [name for name, _ in model.named_modules()]
        assert "" in names and "linear" in names

    def test_children(self):
        model = Branchy()
        assert len(list(model.children())) == 1

    def test_count_parameters(self):
        model = Branchy()
        assert model.count_parameters() == 4 * 3 + 3 + 2


class TestStateDict:
    def test_roundtrip(self):
        model = Branchy()
        state = model.state_dict()
        assert "linear.weight" in state and "counter" in state
        original = model.linear.weight.data.copy()
        model.linear.weight.data += 1.0
        model.load_state_dict(state)
        assert np.allclose(model.linear.weight.data, original)

    def test_state_dict_copies(self):
        model = Branchy()
        state = model.state_dict()
        model.linear.weight.data += 5.0
        assert not np.allclose(state["linear.weight"], model.linear.weight.data)

    def test_load_shape_mismatch_raises(self):
        model = Branchy()
        state = model.state_dict()
        state["linear.weight"] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_unknown_key_raises(self):
        model = Branchy()
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.zeros(1)})

    def test_buffer_roundtrip(self):
        model = Branchy()
        model.update_buffer("counter", np.array([42.0], dtype=np.float32))
        state = model.state_dict()
        model.update_buffer("counter", np.array([0.0], dtype=np.float32))
        model.load_state_dict(state)
        assert model.counter[0] == 42.0

    def test_update_unknown_buffer_raises(self):
        model = Branchy()
        with pytest.raises(KeyError):
            model.update_buffer("nope", np.zeros(1))


class TestTrainEval:
    def test_mode_propagates(self):
        model = Sequential(Linear(2, 2), Linear(2, 2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = Branchy()
        x = Tensor(np.ones((1, 4), dtype=np.float32))
        model(x).sum().backward()
        assert model.linear.weight.grad is not None
        model.zero_grad()
        assert model.linear.weight.grad is None


class TestSequential:
    def test_order_and_indexing(self):
        first = Linear(3, 5, rng=np.random.default_rng(1))
        second = Linear(5, 2, rng=np.random.default_rng(2))
        model = Sequential(first, second)
        assert model[0] is first and model[1] is second
        assert len(model) == 2
        out = model(Tensor(np.zeros((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)

    def test_iteration(self):
        model = Sequential(Linear(2, 2), Linear(2, 2))
        assert len(list(model)) == 2
