"""Runnable examples stay runnable (fast profiles only)."""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_edge_deployment_fast(capsys):
    example = load_example("edge_deployment")
    example.main(["--fast"])
    out = capsys.readouterr().out
    assert "Frozen serving package" in out
    assert "Batched server burst" in out
    assert "correctly refused" in out
