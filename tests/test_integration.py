"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro.data import DataLoader, make_dataset, standard_train_transform
from repro.optim import SGD, CosineAnnealingLR
from repro.snn import spike_rate
from repro.snn.models import build_model
from repro.sparse import NDSNN, DenseMethod, csr_encode
from repro.tensor import Tensor
from repro.train import (
    Trainer,
    load_checkpoint,
    relative_training_cost,
    save_checkpoint,
    training_footprint_bits,
)


def build_pipeline(method, seed=0, epochs=4, model_name="convnet"):
    train = make_dataset("cifar10", train=True, num_samples=96, image_size=8, seed=seed)
    test = make_dataset("cifar10", train=False, num_samples=48, image_size=8, seed=seed)
    rng = np.random.default_rng(seed)
    train_loader = DataLoader(train, batch_size=16, shuffle=True, rng=rng)
    test_loader = DataLoader(test, batch_size=16, shuffle=False)
    model = build_model(
        model_name, num_classes=10, image_size=8, timesteps=2,
        rng=np.random.default_rng(seed + 1),
        **({"channels": (8, 12)} if model_name == "convnet" else {"width_mult": 0.125}),
    )
    optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    scheduler = CosineAnnealingLR(optimizer, t_max=epochs)
    trainer = Trainer(model, method, optimizer, train_loader,
                      test_loader=test_loader, scheduler=scheduler)
    return trainer, model


class TestFullPipeline:
    def test_ndsnn_full_cycle(self):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=24, update_frequency=6,
                       rng=np.random.default_rng(0))
        trainer, model = build_pipeline(method, epochs=4)
        result = trainer.fit(4)
        # Sparsity ramped, spikes tracked, model learned something.
        assert abs(method.sparsity() - 0.9) < 0.03
        assert all(rate > 0 for rate in result.spike_rates)
        assert result.history[-1].train_loss < result.history[0].train_loss + 0.5

    def test_cost_model_on_real_runs(self):
        dense_trainer, _ = build_pipeline(DenseMethod(), seed=1, epochs=3)
        dense_result = dense_trainer.fit(3)
        method = NDSNN(initial_sparsity=0.6, final_sparsity=0.95,
                       total_iterations=18, update_frequency=6,
                       rng=np.random.default_rng(1))
        sparse_trainer, _ = build_pipeline(method, seed=1, epochs=3)
        sparse_result = sparse_trainer.fit(3)
        cost = relative_training_cost(
            sparse_result.spike_rates, sparse_result.densities,
            dense_result.spike_rates, method="ndsnn",
        )
        assert 0.0 < cost.total_relative_to_dense < 1.0

    def test_footprint_tracks_training_sparsity(self):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=24, update_frequency=6,
                       rng=np.random.default_rng(2))
        trainer, model = build_pipeline(method, seed=2, epochs=4)
        result = trainer.fit(4)
        total_weights = method.masks.total_weights
        first = training_footprint_bits(total_weights, result.sparsities[0], 2)
        last = training_footprint_bits(total_weights, result.sparsities[-1], 2)
        assert last < first

    def test_csr_of_trained_sparse_model(self):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=12, update_frequency=6,
                       rng=np.random.default_rng(3))
        trainer, model = build_pipeline(method, seed=3, epochs=2)
        trainer.fit(2)
        for name, parameter in method.masks.parameters.items():
            encoded = csr_encode(parameter.data)
            assert np.array_equal(encoded.to_dense(), parameter.data)
            assert abs(encoded.sparsity - method.masks.layer_sparsity(name)) < 1e-6

    def test_checkpoint_resume_preserves_behaviour(self, tmp_path):
        method = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                       total_iterations=24, update_frequency=6,
                       rng=np.random.default_rng(4))
        trainer, model = build_pipeline(method, seed=4, epochs=2)
        trainer.fit(2)
        save_checkpoint(tmp_path / "ckpt", model, method=method, iteration=trainer.iteration)

        # Fresh model/method; restore; predictions must match exactly.
        method2 = NDSNN(initial_sparsity=0.5, final_sparsity=0.9,
                        total_iterations=24, update_frequency=6,
                        rng=np.random.default_rng(99))
        trainer2, model2 = build_pipeline(method2, seed=4, epochs=2)
        load_checkpoint(tmp_path / "ckpt", model2, method=method2)
        x = Tensor(np.random.default_rng(5).standard_normal((4, 3, 8, 8)).astype(np.float32))
        model.eval()
        model2.eval()
        from repro.tensor import no_grad
        with no_grad():
            assert np.allclose(model(x).data, model2(x).data, atol=1e-6)

    def test_augmentation_in_pipeline(self):
        train = make_dataset("cifar10", train=True, num_samples=64, image_size=8, seed=6)
        rng = np.random.default_rng(6)
        loader = DataLoader(
            train, batch_size=16, shuffle=True,
            transform=standard_train_transform(padding=1, rng=rng), rng=rng,
        )
        method = DenseMethod()
        model = build_model("convnet", num_classes=10, image_size=8, timesteps=2,
                            channels=(8,), rng=np.random.default_rng(7))
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        result = Trainer(model, method, optimizer, loader).fit(2)
        assert len(result.history) == 2

    def test_spike_rate_changes_with_input_scale(self):
        model = build_model("convnet", num_classes=10, image_size=8, timesteps=2,
                            channels=(8,), rng=np.random.default_rng(8))
        small = Tensor(np.random.default_rng(9).standard_normal((4, 3, 8, 8)).astype(np.float32) * 0.1)
        big = Tensor(np.random.default_rng(9).standard_normal((4, 3, 8, 8)).astype(np.float32) * 5.0)
        from repro.snn import reset_spike_stats
        model(small)
        low = spike_rate(model)
        reset_spike_stats(model)
        model(big)
        high = spike_rate(model)
        assert high > low
