"""Shared utilities."""

import numpy as np
import pytest

from repro.utils import (
    Timer,
    load_json,
    load_state_dict,
    save_json,
    save_state_dict,
    seed_everything,
    timed,
)


class TestSeeding:
    def test_returns_generator(self):
        rng = seed_everything(7)
        assert isinstance(rng, np.random.Generator)

    def test_deterministic_layer_init(self):
        from repro.nn import Linear

        seed_everything(11)
        a = Linear(4, 4).weight.data.copy()
        seed_everything(11)
        b = Linear(4, 4).weight.data.copy()
        assert np.array_equal(a, b)


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_timed_prints(self):
        messages = []
        with timed("work", sink=messages.append):
            pass
        assert len(messages) == 1
        assert messages[0].startswith("work:")


class TestJson:
    def test_roundtrip_with_numpy_types(self, tmp_path):
        payload = {
            "float": np.float32(1.5),
            "int": np.int64(7),
            "array": np.arange(3),
            "nested": {"list": [np.float64(0.25)]},
        }
        path = tmp_path / "out.json"
        save_json(path, payload)
        loaded = load_json(path)
        assert loaded["float"] == 1.5
        assert loaded["int"] == 7
        assert loaded["array"] == [0, 1, 2]
        assert loaded["nested"]["list"] == [0.25]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "out.json"
        save_json(path, {"a": 1})
        assert path.exists()


class TestStateDict:
    def test_npz_roundtrip(self, tmp_path):
        state = {"w": np.random.default_rng(0).standard_normal((3, 3)).astype(np.float32)}
        path = tmp_path / "state.npz"
        save_state_dict(path, state)
        loaded = load_state_dict(path)
        assert np.array_equal(loaded["w"], state["w"])
