"""Experiment configs and runners (the bench code path)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    SCALED_NUM_CLASSES,
    build_loaders,
    build_method,
    iterations_per_epoch,
    run_experiment,
    run_lth_experiment,
    run_method,
    run_sweep,
    scaled_config,
    sweep_configs,
)
from repro.sparse import ADMMPruner, DenseMethod, NDSNN, RigLSNN, SETSNN

FAST = dict(epochs=1, train_samples=32, test_samples=16, timesteps=2, batch_size=16)


class TestConfig:
    def test_scaled_config_defaults(self):
        config = scaled_config("cifar100", "convnet", "ndsnn", 0.95)
        assert config.num_classes == SCALED_NUM_CLASSES["cifar100"]
        assert config.sparsity == 0.95

    def test_scaled_overrides(self):
        config = scaled_config("cifar10", "convnet", "set", 0.9, epochs=7)
        assert config.epochs == 7

    def test_scaled_copy(self):
        config = ExperimentConfig()
        other = config.scaled(sparsity=0.99)
        assert other.sparsity == 0.99
        assert config.sparsity != 0.99 or config.sparsity == 0.9


class TestBuilders:
    def test_loaders_geometry(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        train_loader, test_loader, train_set = build_loaders(config)
        assert train_set.num_classes == 10
        images, labels = next(iter(train_loader))
        assert images.shape[0] == 16

    @pytest.mark.parametrize("name,cls", [
        ("dense", DenseMethod),
        ("ndsnn", NDSNN),
        ("set", SETSNN),
        ("rigl", RigLSNN),
        ("admm", ADMMPruner),
    ])
    def test_build_method(self, name, cls):
        config = scaled_config("cifar10", "convnet", name, 0.9, **FAST)
        assert isinstance(build_method(config, 100), cls)

    def test_build_method_rejects_lth(self):
        config = scaled_config("cifar10", "convnet", "lth", 0.9, **FAST)
        with pytest.raises(ValueError):
            build_method(config, 100)

    def test_iterations_per_epoch(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9,
                               train_samples=33, batch_size=16)
        assert iterations_per_epoch(config) == 3


class TestRunners:
    def test_run_experiment_dense(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        outcome = run_experiment(config)
        assert 0.0 <= outcome.final_accuracy <= 1.0
        assert outcome.final_sparsity == 0.0
        assert len(outcome.history) == 1

    def test_run_experiment_ndsnn_reaches_sparsity(self):
        config = scaled_config(
            "cifar10", "convnet", "ndsnn", 0.9,
            epochs=3, train_samples=64, test_samples=16, timesteps=2,
            batch_size=16, update_frequency=2, initial_sparsity=0.5,
        )
        outcome = run_experiment(config)
        assert abs(outcome.final_sparsity - 0.9) < 0.05

    def test_run_lth_concatenates_history(self):
        config = scaled_config("cifar10", "convnet", "lth", 0.9, **FAST)
        outcome = run_lth_experiment(config, rounds=2, epochs_per_round=1)
        assert len(outcome.history) == 2
        assert abs(outcome.final_sparsity - 0.9) < 0.05

    def test_run_method_dispatch(self):
        config = scaled_config("cifar10", "convnet", "lth", 0.9, **FAST, lth_rounds=2)
        outcome = run_method(config)
        assert len(outcome.history) == 2

    def test_outcome_traces(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        outcome = run_experiment(config)
        assert len(outcome.spike_rates) == len(outcome.densities) == len(outcome.history)
        assert all(0 <= r <= 1 for r in outcome.spike_rates)

    def test_determinism_same_seed(self):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST, seed=5)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.final_accuracy == second.final_accuracy

    def test_csr_execution_reaches_same_sparsity(self):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST,
                               initial_sparsity=0.5, update_frequency=2)
        dense = run_experiment(config)
        auto = run_experiment(config.scaled(execution="auto"))
        assert auto.final_sparsity == pytest.approx(dense.final_sparsity, abs=1e-6)


class TestLoaderRngIsolation:
    def test_augmentation_does_not_perturb_shuffle_stream(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)

        def label_epochs(augment, epochs=2):
            train_loader, _, _ = build_loaders(config, augment=augment)
            return [
                np.concatenate([labels for _, labels in train_loader])
                for _ in range(epochs)
            ]

        plain = label_epochs(augment=False)
        augmented = label_epochs(augment=True)
        # The shuffle order must be identical in *every* epoch even
        # though augmentation consumes randomness between batches.
        for epoch_plain, epoch_augmented in zip(plain, augmented):
            np.testing.assert_array_equal(epoch_plain, epoch_augmented)

    def test_different_seeds_shuffle_differently(self):
        config = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        loader_a, _, _ = build_loaders(config)
        loader_b, _, _ = build_loaders(config.scaled(seed=99))
        labels_a = np.concatenate([labels for _, labels in loader_a])
        labels_b = np.concatenate([labels for _, labels in loader_b])
        assert not np.array_equal(labels_a, labels_b)


class TestSweep:
    def test_sweep_configs_cross_grid(self):
        base = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        configs = sweep_configs(base, ["ndsnn", "set"], sparsities=[0.8, 0.9])
        assert len(configs) == 4
        assert {(c.method, c.sparsity) for c in configs} == {
            ("ndsnn", 0.8), ("ndsnn", 0.9), ("set", 0.8), ("set", 0.9),
        }

    @pytest.mark.smoke
    def test_sequential_sweep_preserves_order(self):
        base = scaled_config("cifar10", "convnet", "dense", 0.9, **FAST)
        configs = sweep_configs(base, ["dense", "ndsnn"])
        outcomes = run_sweep(configs, jobs=1)
        assert [o.config.method for o in outcomes] == ["dense", "ndsnn"]
        assert outcomes[0].final_sparsity == 0.0
        assert outcomes[1].final_sparsity > 0.5

    def test_parallel_sweep_matches_sequential(self):
        base = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **FAST)
        configs = sweep_configs(base, ["ndsnn", "set"])
        sequential = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=2)
        for seq, par in zip(sequential, parallel):
            assert seq.final_accuracy == par.final_accuracy
            assert seq.final_sparsity == par.final_sparsity
