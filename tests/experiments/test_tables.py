"""Table/plot rendering helpers used by the benches."""

from repro.experiments.tables import ascii_plot, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", 0.125)])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert "2.50" in lines[2]  # float formatting
        assert "0.12" in lines[3]

    def test_title(self):
        text = format_table(["col"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_width_tracks_longest_cell(self):
        text = format_table(["c"], [("extremely-long-cell",)])
        header = text.splitlines()[0]
        assert len(header) >= len("extremely-long-cell")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + rule only


class TestFormatSeries:
    def test_pairs(self):
        text = format_series("acc", [1, 2], [0.5, 0.75], x_label="epoch")
        assert "acc" in text
        assert "1:0.500" in text
        assert "2:0.750" in text


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        plot = ascii_plot({"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]}, width=20, height=5)
        assert "* = down" in plot or "* = up" in plot
        assert "max=1.000" in plot
        assert "min=0.000" in plot

    def test_flat_series_no_crash(self):
        plot = ascii_plot({"flat": [0.5, 0.5, 0.5]}, width=10, height=3)
        assert "flat" in plot

    def test_empty(self):
        assert ascii_plot({}) == "(empty plot)"

    def test_title(self):
        plot = ascii_plot({"s": [0, 1]}, title="T")
        assert plot.splitlines()[0] == "T"
