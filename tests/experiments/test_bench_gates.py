"""Regression-gate mechanisms of the sweep and serving benchmarks.

Mirrors the kernel-bench gate tests: tier-1 verifies the *mechanism*
(self-baseline passes, doctored baseline fails, CLI exit codes) on a
tiny grid, never the machine-specific timings.
"""

import importlib.util
import json
import os

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")


def load_bench(name):
    path = os.path.join(BENCH_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
class TestSweepRegressionGate:
    def tiny_payload(self, bench):
        return bench.run_scaling(
            epochs=1, train_samples=16, worker_counts=[1],
            methods=("dense",), sparsities=(0.9,),
        )

    def test_self_baseline_passes_and_doctored_baseline_fails(self):
        bench = load_bench("bench_sweep_scaling")
        payload = self.tiny_payload(bench)
        assert bench.check_regressions(payload, payload) == []
        doctored = dict(payload)
        doctored["best_queue_speedup"] = payload["best_queue_speedup"] * 100.0
        failures = bench.check_regressions(doctored, payload)
        assert any("best_queue_speedup" in failure for failure in failures)

    def test_divergent_results_always_fail(self):
        bench = load_bench("bench_sweep_scaling")
        payload = self.tiny_payload(bench)
        diverged = dict(payload)
        diverged["all_bit_identical"] = False
        failures = bench.check_regressions(payload, diverged)
        assert any("all_bit_identical" in failure for failure in failures)

    def test_check_cli_exit_codes(self, tmp_path):
        bench = load_bench("bench_sweep_scaling")
        payload = self.tiny_payload(bench)
        argv = ["--epochs", "1", "--train-samples", "16", "--workers", "1",
                "--methods", "dense", "--sparsities", "0.9"]
        good = tmp_path / "baseline.json"
        # A near-zero speedup floor passes on any machine; this
        # exercises the full --check path without timing flakiness.
        relaxed = dict(payload)
        relaxed["best_queue_speedup"] = 1e-6
        good.write_text(json.dumps(relaxed))
        assert bench.main(argv + ["--check", str(good)]) == 0
        bad = tmp_path / "doctored.json"
        doctored = dict(payload)
        doctored["best_queue_speedup"] = 1e6
        bad.write_text(json.dumps(doctored))
        assert bench.main(argv + ["--check", str(bad)]) == 1


@pytest.mark.smoke
class TestServingRegressionGate:
    def tiny_payload(self, bench):
        return bench.run_comparison(
            width=48, batch_sizes=(1, 2), repeats=1, include_server=False,
        )

    def test_self_baseline_passes_and_doctored_baseline_fails(self):
        bench = load_bench("bench_serving")
        payload = self.tiny_payload(bench)
        assert bench.check_regressions(payload, payload) == []
        doctored = dict(payload)
        doctored["csr_p50_speedup_at_90"] = (
            payload["csr_p50_speedup_at_90"] * 100.0
        )
        failures = bench.check_regressions(doctored, payload)
        assert any("csr_p50_speedup_at_90" in failure for failure in failures)

    def test_check_cli_exit_codes(self, tmp_path):
        bench = load_bench("bench_serving")
        payload = self.tiny_payload(bench)
        argv = ["--repeats", "1", "--width", "48", "--no-server"]
        good = tmp_path / "baseline.json"
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        good.write_text(json.dumps(relaxed))
        assert bench.main(argv + ["--check", str(good)]) == 0
        bad = tmp_path / "doctored.json"
        doctored = dict(payload)
        doctored["compact_p50_speedup_at_50"] = 1e6
        bad.write_text(json.dumps(doctored))
        assert bench.main(argv + ["--check", str(bad)]) == 1


@pytest.mark.smoke
class TestStreamingRegressionGate:
    TINY_ARGS = dict(streams=2, channels=8, events=24, window=4, hidden=16)

    def tiny_payload(self, bench):
        return bench.run_streaming(repeats=1, **self.TINY_ARGS)

    def test_self_baseline_passes_and_doctored_baseline_fails(self):
        bench = load_bench("bench_streaming")
        payload = self.tiny_payload(bench)
        assert payload["all_bit_identical"]
        assert bench.check_regressions(payload, payload) == []
        doctored = dict(payload)
        doctored["csr_event_speedup"] = payload["csr_event_speedup"] * 100.0
        failures = bench.check_regressions(doctored, payload)
        assert any("csr_event_speedup" in failure for failure in failures)

    def test_divergent_results_always_fail(self):
        bench = load_bench("bench_streaming")
        payload = self.tiny_payload(bench)
        diverged = dict(payload)
        diverged["all_bit_identical"] = False
        failures = bench.check_regressions(payload, diverged)
        assert any("all_bit_identical" in failure for failure in failures)

    def test_check_cli_exit_codes(self, tmp_path):
        bench = load_bench("bench_streaming")
        payload = self.tiny_payload(bench)
        argv = ["--repeats", "1", "--streams", "2", "--channels", "8",
                "--events", "24", "--window", "4", "--hidden", "16"]
        good = tmp_path / "baseline.json"
        # Near-zero ratio floors pass on any machine; this exercises
        # the full --check path without timing flakiness.
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        good.write_text(json.dumps(relaxed))
        assert bench.main(argv + ["--check", str(good)]) == 0
        bad = tmp_path / "doctored.json"
        doctored = dict(payload)
        doctored["tumbling_vs_sliding_speedup"] = 1e6
        bad.write_text(json.dumps(doctored))
        assert bench.main(argv + ["--check", str(bad)]) == 1


@pytest.mark.smoke
class TestCheckAllEntryPoint:
    def test_runs_selected_gate_against_relaxed_and_doctored_baselines(
        self, tmp_path
    ):
        check_all = load_bench("check_all")
        bench = load_bench("bench_streaming")
        payload = bench.run_streaming(
            streams=2, channels=8, events=24, window=4, hidden=16, repeats=1,
        )
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        (tmp_path / "BENCH_streaming.json").write_text(json.dumps(relaxed))
        fast = ["--repeats", "1", "--streams", "2", "--channels", "8",
                "--events", "24", "--window", "4", "--hidden", "16"]
        check_all.GATES["streaming"] = (
            "bench_streaming", "BENCH_streaming.json", fast,
        )
        argv = ["--only", "streaming", "--baseline-dir", str(tmp_path)]
        assert check_all.main(argv) == 0
        doctored = dict(payload)
        doctored["csr_event_speedup"] = 1e6
        (tmp_path / "BENCH_streaming.json").write_text(json.dumps(doctored))
        assert check_all.main(argv) == 1

    def test_missing_baseline_fails(self, tmp_path):
        check_all = load_bench("check_all")
        argv = ["--only", "streaming", "--baseline-dir", str(tmp_path)]
        assert check_all.main(argv) == 1

    def test_registry_covers_all_five_gates(self):
        check_all = load_bench("check_all")
        assert set(check_all.GATES) == {
            "kernels", "sweep", "serving", "streaming", "packaging",
        }
        for module_name, baseline, _ in check_all.GATES.values():
            assert os.path.exists(
                os.path.join(BENCH_DIR, module_name + ".py")
            )
            assert os.path.exists(
                os.path.join(BENCH_DIR, "..", baseline)
            )

    def test_json_summary(self, tmp_path):
        check_all = load_bench("check_all")
        bench = load_bench("bench_packaging")
        payload = bench.run_comparison(repeats=1, load_repeats=1, width=48)
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        (tmp_path / "BENCH_packaging.json").write_text(json.dumps(relaxed))
        check_all.GATES["packaging"] = (
            "bench_packaging", "BENCH_packaging.json",
            ["--repeats", "1", "--load-repeats", "1", "--width", "48"],
        )
        summary_path = tmp_path / "summary.json"
        argv = ["--only", "packaging", "--baseline-dir", str(tmp_path),
                "--json", str(summary_path)]
        assert check_all.main(argv) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["ok"] is True
        assert summary["failed"] == []
        assert summary["gates"]["packaging"]["exit_code"] == 0
        # a missing baseline shows up as a machine-readable failure too
        os.remove(tmp_path / "BENCH_packaging.json")
        assert check_all.main(argv) == 1
        summary = json.loads(summary_path.read_text())
        assert summary["ok"] is False
        assert summary["failed"] == ["packaging"]


@pytest.mark.smoke
class TestPackagingRegressionGate:
    def tiny_payload(self, bench):
        return bench.run_comparison(repeats=1, load_repeats=1, width=48)

    def test_self_baseline_passes_and_doctored_baseline_fails(self):
        bench = load_bench("bench_packaging")
        payload = self.tiny_payload(bench)
        assert bench.check_regressions(payload, payload) == []
        doctored = dict(payload)
        doctored["artifact_size_ratio"] = payload["artifact_size_ratio"] * 100.0
        failures = bench.check_regressions(doctored, payload)
        assert any("artifact_size_ratio" in failure for failure in failures)

    def test_check_cli_exit_codes(self, tmp_path):
        bench = load_bench("bench_packaging")
        payload = self.tiny_payload(bench)
        argv = ["--repeats", "1", "--load-repeats", "1", "--width", "48"]
        good = tmp_path / "baseline.json"
        relaxed = dict(payload)
        for metric in bench.HEADLINE_METRICS:
            relaxed[metric] = 1e-6
        good.write_text(json.dumps(relaxed))
        assert bench.main(argv + ["--check", str(good)]) == 0
        bad = tmp_path / "doctored.json"
        doctored = dict(payload)
        doctored["cold_load_speedup"] = 1e6
        bad.write_text(json.dumps(doctored))
        assert bench.main(argv + ["--check", str(bad)]) == 1
