"""Durable job queue: claims, leases, retries, crash recovery."""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    JobQueue,
    QueueWorker,
    SweepScheduler,
    job_id_for,
    manifest_to_outcome,
    outcome_to_manifest,
    run_method,
    run_sweep,
    scaled_config,
    sweep_configs,
)
from repro.experiments.queue import _worker_main

FAST = dict(epochs=1, train_samples=32, test_samples=16, timesteps=2,
            batch_size=16, update_frequency=1)

RESUME = dict(epochs=3, train_samples=48, test_samples=16, timesteps=2,
              batch_size=16, update_frequency=2, initial_sparsity=0.5)


def fast_config(method="ndsnn", **overrides):
    params = {**FAST, **overrides}
    return scaled_config("cifar10", "convnet", method, 0.9, **params)


def fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context("spawn")


class TestJobIds:
    @pytest.mark.smoke
    def test_deterministic_and_distinct(self):
        a = fast_config("ndsnn")
        b = fast_config("set")
        assert job_id_for(a, 0) == job_id_for(a, 0)
        assert job_id_for(a, 0) != job_id_for(b, 0)
        assert job_id_for(a, 0) != job_id_for(a, 1)


class TestSubmitAndClaim:
    @pytest.mark.smoke
    def test_submit_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path)
        configs = [fast_config("dense"), fast_config("set")]
        first = queue.submit(configs)
        second = queue.submit(configs)
        assert first == second
        assert queue.status().pending == 2

    @pytest.mark.smoke
    def test_claim_moves_token_and_writes_lease(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([fast_config()])
        job = queue.claim("worker-a")
        assert job is not None and job.job_id == job_id
        assert job.attempt == 1
        assert queue.status().pending == 0
        assert queue.status().claimed == 1
        lease = queue._read_lease(job_id)
        assert lease["worker"] == "worker-a"
        assert lease["expires_at"] > time.time()

    @pytest.mark.smoke
    def test_each_job_claimed_exactly_once(self, tmp_path):
        queue_a = JobQueue(tmp_path)
        queue_b = JobQueue(tmp_path)  # second handle, same spool
        queue_a.submit([fast_config("dense"), fast_config("set")])
        claims = [queue_a.claim("a"), queue_b.claim("b"),
                  queue_a.claim("a"), queue_b.claim("b")]
        claimed_ids = [job.job_id for job in claims if job is not None]
        assert len(claimed_ids) == 2
        assert len(set(claimed_ids)) == 2
        assert queue_a.claim("a") is None

    @pytest.mark.smoke
    def test_submit_restores_token_lost_mid_submit(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([fast_config()])
        os.remove(tmp_path / "pending" / f"{job_id}.json")
        assert queue.submit([fast_config()]) == [job_id]
        assert queue.status().pending == 1

    @pytest.mark.smoke
    def test_resubmit_never_resets_a_retry_token(self, tmp_path):
        """Re-running a sweep against a live spool keeps attempt counts."""
        queue = JobQueue(tmp_path, lease_seconds=0.05, backoff_seconds=0.01)
        (job_id,) = queue.submit([fast_config()])
        queue.claim("crashy")
        time.sleep(0.06)
        assert queue.reap_expired() == [job_id]  # token back at attempt 2
        assert queue.submit([fast_config()]) == [job_id]
        token = json.loads((tmp_path / "pending" / f"{job_id}.json").read_text())
        assert token["attempt"] == 2  # the fresh attempt=1 token lost
        assert not list((tmp_path / "pending").glob("*.new-*"))


class TestLeaseExpiryAndRetry:
    @pytest.mark.smoke
    def test_expired_lease_is_reaped_with_backoff(self, tmp_path):
        queue = JobQueue(tmp_path, lease_seconds=0.2, backoff_seconds=0.5)
        (job_id,) = queue.submit([fast_config()])
        job = queue.claim("doomed")
        assert job is not None
        time.sleep(0.25)
        assert queue.reap_expired() == [job_id]
        assert queue.status().pending == 1
        token = json.loads((tmp_path / "pending" / f"{job_id}.json").read_text())
        assert token["attempt"] == 2
        assert token["not_before"] > time.time()
        # Inside the backoff window nothing is claimable ...
        assert queue.claim("eager") is None
        # ... and afterwards the job comes back.
        time.sleep(0.55)
        retried = queue.claim("patient")
        assert retried is not None and retried.attempt == 2

    @pytest.mark.smoke
    def test_live_lease_is_not_reaped(self, tmp_path):
        queue = JobQueue(tmp_path, lease_seconds=30.0)
        queue.submit([fast_config()])
        job = queue.claim("healthy")
        job.heartbeat()
        assert queue.reap_expired() == []
        assert queue.status().claimed == 1

    @pytest.mark.smoke
    def test_exhausted_attempts_land_in_failed(self, tmp_path):
        queue = JobQueue(tmp_path, lease_seconds=0.05, max_attempts=2,
                         backoff_seconds=0.01)
        (job_id,) = queue.submit([fast_config()])
        for _ in range(2):
            time.sleep(0.06)
            deadline = time.time() + 2.0
            while queue.claim("crashy") is None:
                assert time.time() < deadline, "job never became claimable"
                time.sleep(0.02)
            time.sleep(0.06)
        assert queue.reap_expired() == [job_id]
        assert queue.status().failed == 1
        assert job_id in queue.failures()
        with pytest.raises(RuntimeError, match="failed"):
            queue.wait([job_id], timeout=1.0)

    @pytest.mark.smoke
    def test_worker_exception_requeues_then_fails(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2, backoff_seconds=0.01)
        broken = fast_config().scaled(method="blackhole")  # unknown method
        (job_id,) = queue.submit([broken])
        worker = QueueWorker(queue, poll_seconds=0.01)
        assert worker.run(max_jobs=1) == 0  # failures are not "completed"
        assert worker.jobs_failed == 1
        assert queue.status().pending == 1  # first failure retries
        time.sleep(0.02)
        assert worker.run(max_jobs=1) == 0
        assert worker.jobs_failed == 2
        assert queue.status().failed == 1
        assert "blackhole" in queue.failures()[job_id]

    @pytest.mark.smoke
    def test_stale_owner_fail_cannot_yank_successor_claim(self, tmp_path):
        """A reaped worker's fail() must not disturb the re-claimant."""
        queue = JobQueue(tmp_path, lease_seconds=0.1, backoff_seconds=0.01)
        queue.submit([fast_config()])
        stale = queue.claim("worker-a")
        time.sleep(0.12)  # worker-a stalls; its lease lapses
        assert queue.reap_expired() == [stale.job_id]
        time.sleep(0.02)
        fresh = queue.claim("worker-b")
        assert fresh is not None and fresh.attempt == 2
        stale.fail("RuntimeError: woke up and errored")  # must be a no-op
        status = queue.status()
        assert status.claimed == 1 and status.pending == 0 and status.failed == 0
        assert queue._read_lease(fresh.job_id)["worker"] == "worker-b"

    @pytest.mark.smoke
    def test_requeue_orphan_is_recovered(self, tmp_path):
        """A reaper killed between its two renames must not lose the job."""
        queue = JobQueue(tmp_path, lease_seconds=0.1, backoff_seconds=0.01)
        (job_id,) = queue.submit([fast_config()])
        queue.claim("doomed")
        # Simulate a reaper dying right after its first rename.
        os.rename(tmp_path / "claimed" / f"{job_id}.json",
                  tmp_path / "requeue" / f"{job_id}.json")
        assert queue.reap_expired() == []  # fresh orphan: grace period
        time.sleep(0.12)
        assert queue.reap_expired() == [job_id]
        assert queue.status().pending == 1
        rescued = queue.claim("rescuer")
        assert rescued is not None and rescued.job_id == job_id

    @pytest.mark.smoke
    def test_result_wins_over_failed_token(self, tmp_path):
        """A stalled owner finishing after a failed-for-good re-claimant
        leaves exactly one terminal state: done, with the result kept."""
        queue = JobQueue(tmp_path, lease_seconds=0.1, backoff_seconds=0.01)
        (job_id,) = queue.submit([fast_config("dense")])
        stalled = queue.claim("stalled")
        # A re-claimant burned the last attempt while we stalled.
        from repro.utils import save_json_atomic

        save_json_atomic(tmp_path / "failed" / f"{job_id}.json",
                         {"job_id": job_id, "attempt": 3, "error": "boom"})
        outcome = run_method(stalled.config)
        stalled.complete(outcome_to_manifest(outcome))
        status = queue.status()
        assert status.results == 1 and status.done == 1 and status.failed == 0
        assert queue.job_states()[job_id]["state"] == "done"
        assert queue.failures() == {}

    @pytest.mark.smoke
    def test_reap_retires_failed_token_when_result_exists(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job_id,) = queue.submit([fast_config("dense")])
        job = queue.claim("worker")
        outcome = run_method(job.config)
        from repro.utils import save_json_atomic

        # Result written, then the worker died before _finalize; later a
        # re-claimant failed for good.  reap must settle this to done.
        save_json_atomic(queue.result_path(job_id), outcome_to_manifest(outcome))
        os.remove(tmp_path / "claimed" / f"{job_id}.json")
        save_json_atomic(tmp_path / "failed" / f"{job_id}.json",
                         {"job_id": job_id, "attempt": 3, "error": "boom"})
        assert job_id in queue.reap_expired()
        status = queue.status()
        assert status.failed == 0 and status.done == 1 and status.results == 1

    @pytest.mark.smoke
    def test_heartbeat_renews_within_long_epochs(self, tmp_path):
        """Per-step heartbeats keep a lease alive when epochs are long."""
        from repro.experiments.queue import _LeaseHeartbeat

        queue = JobQueue(tmp_path, lease_seconds=0.09)
        queue.submit([fast_config()])
        job = queue.claim("steady")
        heartbeat = _LeaseHeartbeat(job)
        before = queue._read_lease(job.job_id)["expires_at"]
        time.sleep(0.04)  # > lease/3: the next step must renew
        heartbeat.on_step_end(trainer=None, iteration=0)
        after = queue._read_lease(job.job_id)["expires_at"]
        assert after > before
        heartbeat.on_step_end(trainer=None, iteration=1)  # within interval: no write
        assert queue._read_lease(job.job_id)["expires_at"] == after


class TestManifests:
    @pytest.mark.smoke
    def test_outcome_manifest_roundtrip(self):
        config = fast_config("dense")
        outcome = run_method(config)
        manifest = outcome_to_manifest(outcome)
        rebuilt = manifest_to_outcome(json.loads(json.dumps(manifest)))
        assert rebuilt.config == config
        assert rebuilt.final_accuracy == outcome.final_accuracy
        assert [s.as_dict() for s in rebuilt.history] == [
            s.as_dict() for s in outcome.history
        ]

    def test_completion_retires_job_and_checkpoints(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([fast_config("dense")])
        worker = QueueWorker(queue)
        assert worker.run() == 1
        status = queue.status()
        assert status.results == 1 and status.done == 1 and status.in_flight == 0
        assert not list((tmp_path / "checkpoints").iterdir())
        assert not list((tmp_path / "leases").iterdir())

    def test_existing_result_short_circuits_reclaim(self, tmp_path):
        queue = JobQueue(tmp_path, lease_seconds=0.1)
        (job_id,) = queue.submit([fast_config("dense")])
        job = queue.claim("slowpoke")
        outcome = run_method(job.config)
        # Simulate: result written, then the worker dies before retiring
        # the token; the next claimant must finalize, not re-run.
        from repro.utils import save_json_atomic

        save_json_atomic(queue.result_path(job_id), outcome_to_manifest(outcome))
        time.sleep(0.15)
        assert queue.claim("second") is None  # finalized, nothing to run
        status = queue.status()
        assert status.results == 1 and status.done == 1 and status.in_flight == 0
        # Reap-finalize cleans scratch just like the normal path.
        assert not list((tmp_path / "checkpoints").iterdir())
        assert not list((tmp_path / "leases").iterdir())


class TestRunSweepQueueBackend:
    def test_queue_backend_matches_local_eight_configs(self, tmp_path):
        """The ISSUE acceptance grid: >= 8 configs, bit-identical."""
        base = fast_config("ndsnn")
        configs = sweep_configs(
            base, ["dense", "ndsnn", "set", "rigl"], sparsities=[0.8, 0.9]
        )
        assert len(configs) == 8
        local = run_sweep(configs, jobs=1)
        queued = run_sweep(configs, jobs=3, backend="queue",
                           spool=tmp_path / "spool")
        assert [o.config for o in queued] == [o.config for o in local]
        for want, got in zip(local, queued):
            assert got.final_accuracy == want.final_accuracy
            assert got.best_accuracy == want.best_accuracy
            assert got.final_sparsity == want.final_sparsity
            assert [s.as_dict() for s in got.history] == [
                s.as_dict() for s in want.history
            ]

    @pytest.mark.smoke
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_sweep([fast_config()], backend="carrier-pigeon")

    @pytest.mark.smoke
    def test_queue_options_require_queue_backend(self):
        with pytest.raises(TypeError, match="lease_seconds"):
            run_sweep([fast_config()], backend="local", lease_seconds=5.0)


class TestCrashRecovery:
    """ISSUE satellite: SIGKILL a worker mid-job, re-claim, resume."""

    def test_killed_worker_job_resumes_to_golden_result(self, tmp_path):
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **RESUME)
        golden = run_method(config)

        spool = tmp_path / "spool"
        queue = JobQueue(spool, lease_seconds=0.5, backoff_seconds=0.05)
        (job_id,) = queue.submit([config])

        # A worker that os._exit()s (no cleanup, exactly like kill -9)
        # after finishing — and checkpointing — its first epoch.
        process = fork_context().Process(
            target=_worker_main, args=(str(spool), 0.5, 3, 0.05, 1, 1)
        )
        process.start()
        process.join(timeout=60)
        assert process.exitcode == 113  # died mid-job, did not complete

        status = queue.status()
        assert status.claimed == 1 and status.results == 0
        checkpoint = spool / "checkpoints" / f"{job_id}.json"
        assert checkpoint.exists(), "crashed worker left no resumable state"
        epochs_done = json.loads(checkpoint.read_text())["epochs_completed"]
        assert epochs_done == 1

        # The lease expires, the job is re-claimed ...
        time.sleep(0.6)
        assert queue.reap_expired() == [job_id]
        token = json.loads((spool / "pending" / f"{job_id}.json").read_text())
        assert token["attempt"] == 2
        time.sleep(0.1)

        # ... and the resumed run completes bit-identically to golden.
        rescuer = QueueWorker(queue, poll_seconds=0.01)
        assert rescuer.run() == 1
        manifests = queue.results([job_id])
        assert list(manifests) == [job_id]  # exactly one manifest, no dupes
        outcome = manifest_to_outcome(manifests[job_id])
        assert outcome.final_accuracy == golden.final_accuracy
        assert outcome.final_sparsity == golden.final_sparsity
        assert [s.as_dict() for s in outcome.history] == [
            s.as_dict() for s in golden.history
        ]
        assert queue.status().in_flight == 0

    def test_resumed_job_keeps_checkpointed_dispatch_decisions(
        self, tmp_path, monkeypatch
    ):
        """Satellite: a crashed job resumed under *different* calibration
        must restore the checkpointed table and finish byte-identical."""
        import repro.sparse.dispatch as dispatch

        def calibration_world(directory, cutoff):
            monkeypatch.setenv(dispatch.CALIBRATION_ENV, str(directory))
            dispatch.clear_process_cache()
            monkeypatch.setattr(
                dispatch, "measure_crossover",
                lambda rows, cols, **kwargs: {"cutoff": cutoff, "buckets": {}},
            )

        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **RESUME)
        # World A: CSR wins everywhere.
        calibration_world(tmp_path / "calib-a", 0.99)
        golden = run_method(config)

        spool = tmp_path / "spool"
        queue = JobQueue(spool, lease_seconds=0.5, backoff_seconds=0.05)
        (job_id,) = queue.submit([config])
        # The forked worker inherits world A and dies after epoch 1.
        crasher = fork_context().Process(
            target=_worker_main, args=(str(spool), 0.5, 3, 0.05, 1, 1)
        )
        crasher.start()
        crasher.join(timeout=60)
        assert crasher.exitcode == 113
        checkpoint_meta = json.loads(
            (spool / "checkpoints" / f"{job_id}.json").read_text()
        )
        assert set(checkpoint_meta["calibration"].values()) == {0.99}

        time.sleep(0.6)
        assert queue.reap_expired() == [job_id]
        time.sleep(0.1)

        # World B: fresh measurement would route everything dense; the
        # restored table must win so epochs 2-3 still run CSR kernels.
        calibration_world(tmp_path / "calib-b", 0.0)
        rescuer = QueueWorker(queue, poll_seconds=0.01)
        assert rescuer.run() == 1
        outcome = manifest_to_outcome(queue.results([job_id])[job_id])
        assert [s.as_dict() for s in outcome.history] == [
            s.as_dict() for s in golden.history
        ]
        dispatch.clear_process_cache()

    def test_scheduler_survives_all_workers_dying(self, tmp_path):
        """SweepScheduler drains in-process if its workers all crash."""
        config = scaled_config("cifar10", "convnet", "ndsnn", 0.9, **RESUME)
        golden = run_method(config)
        spool = tmp_path / "spool"
        queue = JobQueue(spool, lease_seconds=0.5, backoff_seconds=0.05)
        queue.submit([config])
        crasher = fork_context().Process(
            target=_worker_main, args=(str(spool), 0.5, 3, 0.05, 1, 1)
        )
        crasher.start()
        crasher.join(timeout=60)
        assert crasher.exitcode == 113
        time.sleep(0.6)

        scheduler = SweepScheduler(spool=spool, jobs=1, lease_seconds=0.5,
                                   backoff_seconds=0.05)
        (outcome,) = scheduler.run([config])
        assert outcome.final_accuracy == golden.final_accuracy
        assert [s.as_dict() for s in outcome.history] == [
            s.as_dict() for s in golden.history
        ]


class TestWorkerDrainSemantics:
    @pytest.mark.smoke
    def test_empty_spool_is_idle_not_drained(self, tmp_path):
        """A worker started before the sweep submits must wait, not exit."""
        queue = JobQueue(tmp_path)
        worker = QueueWorker(queue, poll_seconds=0.01)
        start = time.time()
        assert worker.run(idle_timeout=0.1) == 0
        assert time.time() - start >= 0.1

    @pytest.mark.smoke
    def test_run_drains_through_a_poison_job(self, tmp_path):
        """An unbounded run() retires a poison job and exits clean."""
        queue = JobQueue(tmp_path, max_attempts=2, backoff_seconds=0.01)
        queue.submit([fast_config().scaled(method="blackhole")])
        worker = QueueWorker(queue, poll_seconds=0.01)
        assert worker.run() == 0
        assert worker.jobs_failed == 2
        status = queue.status()
        assert status.failed == 1 and status.in_flight == 0

    @pytest.mark.smoke
    def test_drained_spool_exits_immediately(self, tmp_path):
        queue = JobQueue(tmp_path)
        queue.submit([fast_config("dense")])
        QueueWorker(queue, poll_seconds=0.01).run()
        start = time.time()
        # A second worker on the finished spool exits without a timeout.
        assert QueueWorker(queue, poll_seconds=0.01).run() == 0
        assert time.time() - start < 5.0


class TestStatusReporting:
    @pytest.mark.smoke
    def test_job_states_detail(self, tmp_path):
        queue = JobQueue(tmp_path)
        ids = queue.submit([fast_config("dense"), fast_config("set")])
        queue.claim("inspector")
        states = queue.job_states()
        assert set(states) == set(ids)
        assert sorted(entry["state"] for entry in states.values()) == [
            "claimed", "pending",
        ]
        claimed = next(e for e in states.values() if e["state"] == "claimed")
        assert claimed["worker"] == "inspector"
        assert claimed["lease_remaining"] > 0
