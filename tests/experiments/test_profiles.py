"""Benchmark profile plumbing (imported from benchmarks/_profiles.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

PROFILE_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "_profiles.py"


@pytest.fixture(scope="module")
def profiles():
    spec = importlib.util.spec_from_file_location("_profiles_under_test", PROFILE_PATH)
    module = importlib.util.module_from_spec(spec)
    # Dataclasses resolve string annotations through sys.modules, so the
    # module must be registered before execution.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop(spec.name, None)


class TestProfiles:
    def test_quick_profile_is_smaller_than_full(self, profiles):
        quick, full = profiles.QUICK_PROFILE, profiles.FULL_PROFILE
        assert quick.epochs <= full.epochs
        assert quick.train_samples <= full.train_samples
        assert quick.timesteps <= full.timesteps
        assert len(quick.sparsities) <= len(full.sparsities)

    def test_full_profile_matches_paper_sparsities(self, profiles):
        assert profiles.FULL_PROFILE.sparsities == (0.9, 0.95, 0.98, 0.99)

    def test_epochs_for_resnet_differ(self, profiles):
        profile = profiles.QUICK_PROFILE
        assert profile.epochs_for("resnet19") == profile.epochs_resnet
        assert profile.epochs_for("vgg16") == profile.epochs

    def test_image_size_for_datasets(self, profiles):
        profile = profiles.QUICK_PROFILE
        assert profile.image_size_for("tiny_imagenet") == profile.image_size_tiny
        assert profile.image_size_for("cifar10") == profile.image_size_cifar

    def test_profile_config_builds_valid_config(self, profiles):
        config = profiles.profile_config("cifar10", "vgg16", "ndsnn", 0.95)
        assert config.sparsity == 0.95
        assert config.model == "vgg16"
        assert config.epochs == profiles.PROFILE.epochs

    def test_profile_config_overrides(self, profiles):
        config = profiles.profile_config("cifar10", "vgg16", "ndsnn", 0.9, epochs=99)
        assert config.epochs == 99
