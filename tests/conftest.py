"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import DataLoader, make_dataset
from repro.snn.models import SpikingConvNet, SpikingMLP
from repro.sparse.dispatch import CALIBRATION_ENV, clear_process_cache


@pytest.fixture(scope="session", autouse=True)
def calibration_cache(tmp_path_factory):
    """Session-wide shared dispatch-calibration cache.

    Every test (and every worker process it spawns) resolves dispatch
    cutoffs through one write-once cache, so a shape is timed at most
    once per session and all processes agree on the routing.
    """
    import os

    directory = tmp_path_factory.mktemp("calibration")
    previous = os.environ.get(CALIBRATION_ENV)
    os.environ[CALIBRATION_ENV] = str(directory)
    clear_process_cache()
    yield directory
    if previous is None:
        os.environ.pop(CALIBRATION_ENV, None)
    else:
        os.environ[CALIBRATION_ENV] = previous
    clear_process_cache()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_convnet(rng):
    """A small spiking convnet with enough weights for sparsity tests."""
    return SpikingConvNet(
        num_classes=4,
        in_channels=2,
        image_size=8,
        channels=(8, 12),
        timesteps=3,
        rng=rng,
    )


@pytest.fixture
def tiny_mlp(rng):
    return SpikingMLP(in_features=16, num_classes=3, hidden=(24,), timesteps=3, rng=rng)


@pytest.fixture
def tiny_loaders():
    train = make_dataset("cifar10", train=True, num_samples=64, image_size=8, seed=7)
    test = make_dataset("cifar10", train=False, num_samples=32, image_size=8, seed=7)
    train_loader = DataLoader(train, batch_size=16, shuffle=True, rng=np.random.default_rng(0))
    test_loader = DataLoader(test, batch_size=16, shuffle=False)
    return train_loader, test_loader, train
