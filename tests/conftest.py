"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import DataLoader, make_dataset
from repro.snn.models import SpikingConvNet, SpikingMLP


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_convnet(rng):
    """A small spiking convnet with enough weights for sparsity tests."""
    return SpikingConvNet(
        num_classes=4,
        in_channels=2,
        image_size=8,
        channels=(8, 12),
        timesteps=3,
        rng=rng,
    )


@pytest.fixture
def tiny_mlp(rng):
    return SpikingMLP(in_features=16, num_classes=3, hidden=(24,), timesteps=3, rng=rng)


@pytest.fixture
def tiny_loaders():
    train = make_dataset("cifar10", train=True, num_samples=64, image_size=8, seed=7)
    test = make_dataset("cifar10", train=False, num_samples=32, image_size=8, seed=7)
    train_loader = DataLoader(train, batch_size=16, shuffle=True, rng=np.random.default_rng(0))
    test_loader = DataLoader(test, batch_size=16, shuffle=False)
    return train_loader, test_loader, train
