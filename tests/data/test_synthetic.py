"""Synthetic dataset generators (CIFAR / Tiny-ImageNet stand-ins)."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DATASET_SPECS,
    SyntheticImageDataset,
    SyntheticSpec,
    make_dataset,
)


class TestSpecs:
    def test_paper_dataset_shapes(self):
        assert DATASET_SPECS["cifar10"].num_classes == 10
        assert DATASET_SPECS["cifar10"].image_size == 32
        assert DATASET_SPECS["cifar100"].num_classes == 100
        assert DATASET_SPECS["tiny_imagenet"].num_classes == 200
        assert DATASET_SPECS["tiny_imagenet"].image_size == 64

    def test_scaled_spec(self):
        spec = DATASET_SPECS["cifar100"].scaled(image_size=16, num_classes=20)
        assert spec.image_size == 16 and spec.num_classes == 20
        assert spec.noise == DATASET_SPECS["cifar100"].noise


class TestGeneration:
    def test_shapes_and_types(self):
        dataset = make_dataset("cifar10", num_samples=20, image_size=16)
        image, label = dataset[0]
        assert image.shape == (3, 16, 16)
        assert image.dtype == np.float32
        assert isinstance(label, int)
        assert len(dataset) == 20

    def test_determinism(self):
        a = make_dataset("cifar10", num_samples=16, image_size=8, seed=5)
        b = make_dataset("cifar10", num_samples=16, image_size=8, seed=5)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_dataset("cifar10", num_samples=16, image_size=8, seed=5)
        b = make_dataset("cifar10", num_samples=16, image_size=8, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_train_test_disjoint_samples_same_prototypes(self):
        train = make_dataset("cifar10", train=True, num_samples=16, image_size=8, seed=1)
        test = make_dataset("cifar10", train=False, num_samples=16, image_size=8, seed=1)
        assert np.array_equal(train.prototypes, test.prototypes)
        assert not np.array_equal(train.images, test.images)

    def test_class_balance(self):
        dataset = make_dataset("cifar10", num_samples=100, image_size=8)
        counts = np.bincount(dataset.labels, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_classes_are_separable(self):
        """Nearest-prototype classification beats chance by a wide margin,
        so accuracy comparisons between methods are meaningful."""
        dataset = make_dataset("cifar10", num_samples=100, image_size=16, seed=3)
        flat_prototypes = dataset.prototypes.reshape(10, -1)
        correct = 0
        for image, label in (dataset[i] for i in range(len(dataset))):
            distances = ((flat_prototypes - image.reshape(-1)) ** 2).sum(axis=1)
            correct += int(distances.argmin() == label)
        assert correct / len(dataset) > 0.5  # chance is 0.1

    def test_noise_makes_task_nontrivial(self):
        """Samples differ from their prototype (no degenerate dataset)."""
        dataset = make_dataset("cifar10", num_samples=10, image_size=8, seed=4)
        image, label = dataset[0]
        assert not np.allclose(image, dataset.prototypes[label])

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            make_dataset("cifar100", num_samples=10)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet21k")

    def test_properties(self):
        dataset = make_dataset("cifar10", num_samples=20, image_size=8)
        assert dataset.num_classes == 10
        assert dataset.image_shape == (3, 8, 8)


class TestArrayDataset:
    def test_wraps_arrays(self):
        images = np.zeros((4, 1, 2, 2), dtype=np.float32)
        labels = np.array([0, 1, 0, 1])
        dataset = ArrayDataset(images, labels)
        assert len(dataset) == 4
        image, label = dataset[1]
        assert label == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1)), np.zeros(2))
