"""DataLoader batching semantics."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader
from repro.tensor import Tensor


def dataset(n=10):
    images = np.arange(n, dtype=np.float32).reshape(n, 1, 1, 1)
    labels = np.arange(n) % 3
    return ArrayDataset(images, labels)


class TestBatching:
    def test_batch_shapes(self):
        loader = DataLoader(dataset(10), batch_size=4, shuffle=False)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 1, 1, 1)
        assert batches[-1][0].shape == (2, 1, 1, 1)  # remainder kept

    def test_drop_last(self):
        loader = DataLoader(dataset(10), batch_size=4, shuffle=False, drop_last=True)
        batches = list(loader)
        assert len(batches) == 2
        assert len(loader) == 2

    def test_len_without_drop(self):
        assert len(DataLoader(dataset(10), batch_size=4)) == 3
        assert len(DataLoader(dataset(8), batch_size=4)) == 2

    def test_yields_tensors_and_labels(self):
        loader = DataLoader(dataset(4), batch_size=2, shuffle=False)
        images, labels = next(iter(loader))
        assert isinstance(images, Tensor)
        assert isinstance(labels, np.ndarray)
        assert labels.dtype == np.int64

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(dataset(6), batch_size=3, shuffle=False)
        images, _ = next(iter(loader))
        assert np.allclose(images.data.reshape(-1), [0, 1, 2])

    def test_shuffle_deterministic_with_rng(self):
        a = DataLoader(dataset(10), batch_size=5, shuffle=True, rng=np.random.default_rng(3))
        b = DataLoader(dataset(10), batch_size=5, shuffle=True, rng=np.random.default_rng(3))
        xa, _ = next(iter(a))
        xb, _ = next(iter(b))
        assert np.array_equal(xa.data, xb.data)

    def test_shuffle_changes_between_epochs(self):
        loader = DataLoader(dataset(20), batch_size=20, shuffle=True, rng=np.random.default_rng(4))
        first, _ = next(iter(loader))
        second, _ = next(iter(loader))
        assert not np.array_equal(first.data, second.data)

    def test_transform_applied(self):
        loader = DataLoader(
            dataset(4), batch_size=4, shuffle=False, transform=lambda batch: batch * 2
        )
        images, _ = next(iter(loader))
        assert np.allclose(images.data.reshape(-1), [0, 2, 4, 6])

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(dataset(4), batch_size=0)
