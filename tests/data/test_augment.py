"""Batch augmentation transforms."""

import numpy as np
import pytest

from repro.data import (
    Compose,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    standard_train_transform,
)


def batch(n=4, c=3, size=8, seed=0):
    return np.random.default_rng(seed).standard_normal((n, c, size, size)).astype(np.float32)


class TestFlip:
    def test_always_flip(self):
        transform = RandomHorizontalFlip(p=1.0, rng=np.random.default_rng(0))
        data = batch()
        out = transform(data)
        assert np.allclose(out, data[:, :, :, ::-1])

    def test_never_flip(self):
        transform = RandomHorizontalFlip(p=0.0, rng=np.random.default_rng(0))
        data = batch()
        assert np.allclose(transform(data), data)

    def test_partial_flip_preserves_content(self):
        transform = RandomHorizontalFlip(p=0.5, rng=np.random.default_rng(1))
        data = batch()
        out = transform(data)
        for i in range(len(data)):
            assert np.allclose(out[i], data[i]) or np.allclose(out[i], data[i, :, :, ::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=2.0)


class TestCrop:
    def test_shape_preserved(self):
        transform = RandomCrop(padding=2, rng=np.random.default_rng(2))
        data = batch(size=8)
        assert transform(data).shape == data.shape

    def test_zero_padding_identity(self):
        transform = RandomCrop(padding=0)
        data = batch()
        assert np.allclose(transform(data), data)

    def test_crop_content_is_shifted_window(self):
        transform = RandomCrop(padding=1, rng=np.random.default_rng(3))
        data = batch(n=1, size=4)
        out = transform(data)
        padded = np.pad(data, ((0, 0), (0, 0), (1, 1), (1, 1)))
        # The output must equal one of the 9 possible windows.
        windows = [
            padded[0, :, top:top + 4, left:left + 4]
            for top in range(3) for left in range(3)
        ]
        assert any(np.allclose(out[0], window) for window in windows)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomCrop(padding=-1)


class TestNormalize:
    def test_standardizes(self):
        transform = Normalize(mean=[1.0, 2.0, 3.0], std=[2.0, 2.0, 2.0])
        data = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = transform(data)
        assert np.allclose(out[:, 0], 0.0)
        assert np.allclose(out[:, 2], -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])


class TestNoiseAndCompose:
    def test_gaussian_noise_changes_data(self):
        transform = GaussianNoise(sigma=0.5, rng=np.random.default_rng(4))
        data = batch()
        assert not np.allclose(transform(data), data)

    def test_zero_sigma_identity(self):
        data = batch()
        assert np.allclose(GaussianNoise(sigma=0.0)(data), data)

    def test_compose_order(self):
        double = lambda b: b * 2  # noqa: E731
        add_one = lambda b: b + 1  # noqa: E731
        composed = Compose([double, add_one])
        assert np.allclose(composed(np.ones((1, 1, 1, 1), dtype=np.float32)), 3.0)

    def test_standard_train_transform_runs(self):
        transform = standard_train_transform(padding=2, rng=np.random.default_rng(5))
        data = batch()
        assert transform(data).shape == data.shape
