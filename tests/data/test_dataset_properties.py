"""Property-based tests of the synthetic data substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DataLoader, make_dataset


@settings(max_examples=15, deadline=None)
@given(
    num_samples=st.integers(min_value=10, max_value=60),
    image_size=st.sampled_from([8, 12, 16]),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_dataset_shapes_and_ranges(num_samples, image_size, seed):
    dataset = make_dataset("cifar10", num_samples=num_samples, image_size=image_size, seed=seed)
    assert len(dataset) == num_samples
    image, label = dataset[0]
    assert image.shape == (3, image_size, image_size)
    assert 0 <= label < 10
    assert np.isfinite(dataset.images).all()


@settings(max_examples=15, deadline=None)
@given(
    batch_size=st.integers(min_value=1, max_value=17),
    num_samples=st.integers(min_value=5, max_value=40),
)
def test_loader_covers_every_sample_exactly_once(batch_size, num_samples):
    dataset = make_dataset("cifar10", num_samples=max(num_samples, 10), image_size=8, seed=1)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True,
                        rng=np.random.default_rng(2))
    seen = 0
    label_counts = np.zeros(10, dtype=int)
    for images, labels in loader:
        seen += len(labels)
        label_counts += np.bincount(labels, minlength=10)
    assert seen == len(dataset)
    assert label_counts.sum() == len(dataset)
    assert np.array_equal(np.sort(label_counts), np.sort(np.bincount(dataset.labels, minlength=10)))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_train_and_test_share_class_structure(seed):
    train = make_dataset("cifar10", train=True, num_samples=20, image_size=8, seed=seed)
    test = make_dataset("cifar10", train=False, num_samples=20, image_size=8, seed=seed)
    assert np.array_equal(train.prototypes, test.prototypes)
    assert not np.array_equal(train.images, test.images)
